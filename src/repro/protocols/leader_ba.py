"""Leader-based (Tendermint-style) BA under partial synchrony.

The paper's protocols iterate over *randomly announced or mined*
proposers; the deployed form of the same communication-complexity
question (Momose-Ren, "Optimal Communication Complexity of Authenticated
Byzantine Agreement"; Cohen-Keidar-Naor's survey) is the **view-based
leader protocol**: a round-robin leader per view, ``n - f`` quorum
certificates, and a locked-value/valid-value rule carrying safety across
view changes.  This module implements that family against the repo's
simulation contract, reusing :mod:`repro.protocols.certificates` /
:mod:`repro.protocols.verification` for its quorum certificates.

Resilience is ``n > 3f`` (the partial-synchrony optimum).  Each view
``v = 1, 2, ...`` occupies :data:`VIEW_ROUNDS` protocol rounds:

1. **NewView** — every node multicasts ``(NewView, v, b)`` attesting its
   current belief ``b`` and carrying its *lock* (the highest prevote-QC
   it has seen).  This is simultaneously the view-change message (the
   lock travels to the next leader) and the input attestation that makes
   agreement validity hold (see below).
2. **Propose** — the round-robin leader of ``v`` multicasts a proposal:
   either its highest known QC's bit with that QC attached (the
   *valid-value* path), or — when it knows no QC at all — a bit backed
   by ``f + 1`` fresh view-``v`` NewView attestations (so a value no
   honest node input can never be justified: ``f`` corrupt attestations
   are one short of the quorum).
3. **Prevote** — a node prevotes the proposal unless its lock blocks it:
   a QC-justified proposal is accepted when the attached QC's rank is at
   least the lock's rank (*unlock on a higher-or-equal valid-value
   certificate*) or it re-proposes the locked bit; an attestation-
   justified proposal only when the node holds no lock at all.  Prevote
   auth topics are ``("Vote", v, b)``, so ``f + 1``-style certificate
   assembly and verification are the unmodified
   :func:`~repro.protocols.certificates.certificate_from_votes` /
   shared-cache :meth:`~repro.protocols.verification.VerificationCache.
   check_certificate` machinery at threshold ``n - f``.
4. **Precommit** — on ``n - f`` valid view-``v`` prevotes for ``b`` the
   node assembles the prevote-QC, adopts it as its lock (locks only ever
   *grow* in rank — the locks-never-regress invariant the property suite
   pins), and multicasts ``(Precommit, v, b)``.

A quorum of ``n - f`` valid view-``v`` precommits for ``b`` decides
``b``: the decider multicasts a transferable
:class:`LeaderDecideMsg` carrying the precommit quorum (validated per
auth, like the iterated BA's ``Terminate`` commits) and halts — but only
once its announcement lands at or after the conditions'
``trusted_send_round``; a node that decides while the network may still
drop copies keeps re-announcing at each view boundary until a trusted
round passes, so no laggard can be stranded behind a pre-GST loss.

**Safety across view changes** (the standard Tendermint argument, per
height): if an honest node decides ``b`` at view ``v``, then ``n - f``
precommitted, so at least ``n - 2f`` honest nodes hold a rank-``v``
lock on ``b``.  Any later prevote-QC needs ``n - f`` prevotes and hence
``n - 2f`` honest prevoters; two honest subsets of size ``n - 2f``
among the ``n - f`` honest nodes overlap in ``n - 3f >= 1`` members, so
some prevoter holds that lock and only accepts ``b`` again (an opposite
proposal would need a QC of rank ``>= v`` for ``1 - b``, which by
induction never forms; equal-rank QCs for opposite bits are impossible
— two ``n - f`` quorums overlap in ``n - 2f > f`` nodes, more than the
``f`` possible double-voters, for *every* admitted ``n > 3f``; a fixed
``2f + 1`` threshold would cover only ``n = 3f + 1``).

**View timers** are derived from the network conditions: with dilation
``Δ`` and GST, sends become reliable from protocol round
``trusted_send_round = ceil(max(gst, heals) / Δ)``, i.e. after
``ceil(trusted_send_round / VIEW_ROUNDS)`` burned views; the builder
budgets that many views plus ``f + 1`` leader rotations (some leader in
any ``f + 1`` consecutive views is honest) plus slack for lock
propagation, so a decision lands within a bounded number of views after
GST under every supported adversary.

**Chain workload**: ``heights > 1`` runs repeated BA instances through
the same view machinery — height ``h`` owns a fixed window of views,
locks carry forward (an undecided height's locked value becomes the
node's belief, a decided height's decision does), and view/leader
numbering runs globally so auth topics never repeat across heights.
This is the repo's heavy-traffic scenario axis (``leader-chain``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.crypto.registry import IDEAL_MODE, KeyRegistry
from repro.errors import ConfigurationError
from repro.protocols.base import (
    Authenticator,
    OracleProposerPolicy,
    ProposerPolicy,
    ProtocolInstance,
    SignatureAuthenticator,
)
from repro.protocols.certificates import (
    Certificate,
    certificate_from_votes,
    rank,
)
from repro.protocols.early_stopping import trusted_send_round_for
from repro.protocols.verification import CACHE_LIMIT, VerificationCache
from repro.rng import Seed
from repro.serialization import _intern_field_key, intern_by_key, intern_payload
from repro.sim.conditions import NetworkConditions
from repro.sim.leader import LeaderOracle, RoundRobinLeaderOracle
from repro.sim.node import Node, RoundContext
from repro.types import Bit, NodeId, Round

#: Protocol rounds per view, in phase order.
PHASE_NEW_VIEW = "NewView"
PHASE_PROPOSE = "Propose"
PHASE_PREVOTE = "Prevote"
PHASE_PRECOMMIT = "Precommit"

_PHASES = (PHASE_NEW_VIEW, PHASE_PROPOSE, PHASE_PREVOTE, PHASE_PRECOMMIT)

VIEW_ROUNDS = len(_PHASES)

#: Default number of repeated instances for the ``leader-chain`` workload.
DEFAULT_CHAIN_HEIGHTS = 3


def schedule(round_index: Round) -> Tuple[int, str]:
    """Map a global protocol round to ``(view, phase)`` (views 1-based)."""
    view, offset = divmod(round_index, VIEW_ROUNDS)
    return view + 1, _PHASES[offset]


def view_of_round(round_index: Round) -> int:
    """The (1-based) view a global protocol round belongs to."""
    return round_index // VIEW_ROUNDS + 1


def proposing_view(round_index: Round) -> Optional[int]:
    """The view whose leader proposes in this round, if any.

    The leader-killer adversary uses this to strike each view's leader
    before it can speak; the view number doubles as the leader oracle's
    epoch (global across chain heights).
    """
    view, phase = schedule(round_index)
    return view if phase == PHASE_PROPOSE else None


def rounds_for_views(views: int) -> int:
    """Round budget for ``views`` full views: every phase plus two
    trailing delivery rounds, so the last view's precommit quorum can be
    tallied and its decide announcement relayed."""
    if views < 1:
        raise ValueError("need at least one view")
    return VIEW_ROUNDS * views + 2


def default_views_per_height(f: int,
                             conditions: Optional[NetworkConditions]) -> int:
    """The Δ-derived per-height view budget.

    ``ceil(trusted_send_round / VIEW_ROUNDS)`` views can be burned before
    sends are reliable; after that, any ``f + 1`` consecutive views
    contain an honest round-robin leader (and an exhausted corruption
    budget), plus two slack views for a withheld-QC lock to propagate
    through a NewView round and for the decide announcement to land.
    """
    trusted = trusted_send_round_for(conditions)
    burned = -(-trusted // VIEW_ROUNDS)  # ceil division
    return burned + f + 3


def decision_view_of(result: Any) -> int:
    """The view a finished execution settled in, for artifact rows.

    The last honest decision round's view when every honest node
    decided; otherwise the view of the last executed round (the
    exhausted budget).  ``view_changes`` artifact columns report this
    minus one — the views that ended without settling the execution.
    """
    rounds = result.decision_rounds()
    if rounds and result.all_decided():
        # The decision round tallies the *previous* round's precommit
        # quorum, so the settled view is the round before's.
        return view_of_round(max(max(rounds) - 1, 0))
    settled = view_of_round(max(result.rounds_executed - 1, 0))
    budget = getattr(result, "rounds_budget", None)
    if budget is not None and budget > VIEW_ROUNDS:
        # The round budget pads two trailing delivery rounds past the
        # last view (rounds_for_views); an exhausted run must not report
        # those as a view of their own.
        settled = min(settled, (budget - 2) // VIEW_ROUNDS)
    return settled


# ---------------------------------------------------------------------------
# Messages.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NewViewMsg:
    """``(NewView, v, b)``: belief attestation plus the carried lock.

    ``auth`` signs ``("NewView", view, bit)``; the attached QC is
    self-certifying, so it is not part of the signed topic — relaying a
    node's attestation next to a different valid QC proves nothing it
    could not prove alone.
    """

    view: int
    bit: Bit
    qc: Optional["Certificate"]
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class LeaderProposeMsg:
    """The view leader's proposal with its justification attached.

    Exactly one justification is carried: ``qc`` (the valid-value path)
    or ``attestations`` — ``f + 1`` QC-stripped view-``v`` NewView
    messages for ``bit`` (the fresh-value path; stripping is sound
    because the attestation auth covers only ``(NewView, view, bit)``).
    """

    view: int
    bit: Bit
    qc: Optional["Certificate"]
    attestations: Tuple[NewViewMsg, ...]
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class PrevoteMsg:
    """``(Prevote, v, b)``; the auth topic is ``("Vote", v, b)`` so an
    ``n - f`` quorum of these is a
    :class:`~repro.protocols.certificates.Certificate` verifiable by the
    unmodified shared-cache machinery."""

    view: int
    bit: Bit
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class PrecommitMsg:
    """``(Precommit, v, b)``: the sender saw a view-``v`` prevote-QC for
    ``b`` (and locked it)."""

    view: int
    bit: Bit
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class LeaderDecideMsg:
    """``(Decide, v, b)`` carrying the ``n - f`` precommit quorum.

    Transferable proof of the decision: each attached precommit is
    authenticated individually (never through the certificate cache,
    whose content keys do not record *which* predicate verified — a
    precommit quorum must not be replayable as a prevote-QC)."""

    view: int
    bit: Bit
    precommits: Tuple[PrecommitMsg, ...]
    sender: NodeId
    auth: Any


# ---------------------------------------------------------------------------
# Config and node.
# ---------------------------------------------------------------------------


@dataclass
class LeaderBaConfig:
    """Shared parameters of one leader-BA execution."""

    threshold: int  # n - f quorums: intersection n - 2f > f for all n > 3f
    fallback_quorum: int  # f + 1 fresh attestations justify a proposal
    authenticator: Authenticator
    proposer: ProposerPolicy
    #: Views per chain height; view ``v`` belongs to height
    #: ``(v - 1) // views_per_height + 1``.
    views_per_height: int
    heights: int = 1
    #: Execution-wide memo for the public verification predicates; the
    #: nodes of one instance share it (see repro.protocols.verification).
    verification: VerificationCache = field(default_factory=VerificationCache)
    #: First protocol round whose sends provably reach every honest node
    #: (``NetworkConditions.trusted_send_round``; 0 under lock-step).
    #: Deciders keep re-announcing their decision at view boundaries
    #: until a round at or past this one, then halt.
    trusted_send_round: Round = 0

    @property
    def total_views(self) -> int:
        return self.views_per_height * self.heights

    def height_of_view(self, view: int) -> int:
        return (view - 1) // self.views_per_height + 1


class LeaderBaNode(Node):
    """One party of the view-based leader protocol."""

    def __init__(self, node_id: NodeId, n: int, input_bit: Bit,
                 config: LeaderBaConfig) -> None:
        super().__init__(node_id, n)
        self.config = config
        self.input_bit = input_bit
        #: Current belief: the input, overtaken by height decisions.
        self.belief: Bit = input_bit
        self._belief_height = 0
        #: The lock: highest-ranked prevote-QC observed (None = unlocked).
        self.locked: Optional[Certificate] = None
        # (view, bit) -> voter -> auth, valid prevotes only.
        self.votes_seen: Dict[Tuple[int, Bit], Dict[NodeId, Any]] = {}
        # (view, bit) -> sender -> PrecommitMsg, valid precommits only.
        self.precommits_seen: Dict[Tuple[int, Bit],
                                   Dict[NodeId, PrecommitMsg]] = {}
        # Valid proposals per view (an equivocating leader may land >1).
        self.proposals: Dict[int, List[LeaderProposeMsg]] = {}
        # view -> bit -> sender -> NewViewMsg; populated only for views
        # this node leads (justification material for its proposal).
        self.new_views: Dict[int, Dict[Bit, Dict[NodeId, NewViewMsg]]] = {}
        #: height -> (view, bit) decisions, in whatever order they land.
        self.height_decisions: Dict[int, Tuple[int, Bit]] = {}
        self._final_msg: Optional[LeaderDecideMsg] = None
        self._verification = config.verification
        # Per-node identity front for prevote-QCs (same contract as
        # AbaNode._cert_cache: each received object resolved once, and —
        # unlike the shared cache — negative results may be kept).
        self._cert_cache: Dict[int, Tuple[Certificate, bool]] = {}

    # -- validation helpers --------------------------------------------------
    def _check_auth(self, node_id: NodeId, topic: Any, auth: Any) -> bool:
        return self._verification.check_auth(
            self.config.authenticator, node_id, topic, auth)

    def _check_prevote_auth(self, vote) -> bool:
        # SignedVote-shaped: topic ("Vote", view, bit) — the certificate
        # machinery's native format.
        return self._verification.check_vote(self.config.authenticator, vote)

    def _check_qc(self, qc: Optional[Certificate],
                  expected_bit: Optional[Bit] = None,
                  below_view: Optional[int] = None) -> bool:
        if qc is None:
            return True  # the fictitious rank-0 certificate
        if expected_bit is not None and qc.bit != expected_bit:
            return False
        if below_view is not None and qc.iteration >= below_view:
            return False
        entry = self._cert_cache.get(id(qc))
        if entry is not None and entry[0] is qc:
            return entry[1]
        result = self._verification.check_certificate(
            qc, self.config.threshold, self._check_prevote_auth)
        if len(self._cert_cache) >= CACHE_LIMIT:
            self._cert_cache.clear()
        self._cert_cache[id(qc)] = (qc, result)
        return result

    def _absorb_qc(self, qc: Optional[Certificate]) -> None:
        """Adopt a (pre-validated) QC as the lock if it outranks it.

        Strict inequality is the locks-never-regress invariant: the
        lock's rank is monotone over the whole execution, heights
        included.
        """
        if qc is not None and qc.iteration > rank(self.locked):
            self.locked = qc

    def _is_leader(self, view: int) -> bool:
        proposer = self.config.proposer
        oracle = getattr(proposer, "oracle", None)
        return oracle is not None and oracle.leader(view) == self.node_id

    # -- inbox processing ----------------------------------------------------
    def _process_inbox(self, ctx: RoundContext) -> None:
        front = self._verification.valid_payloads
        for delivery in ctx.inbox:
            msg = delivery.payload
            entry = front.get(id(msg))
            known = entry is not None and entry[0] is msg
            cls = msg.__class__
            if cls is PrevoteMsg:
                self._handle_prevote(msg, known)
            elif cls is NewViewMsg:
                self._handle_new_view(msg, known)
            elif cls is PrecommitMsg:
                self._handle_precommit(msg, known)
            elif cls is LeaderProposeMsg:
                self._handle_propose(msg, known)
            elif cls is LeaderDecideMsg:
                self._handle_decide(msg, known)

    def _handle_new_view(self, msg: NewViewMsg, known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if msg.bit not in (0, 1):
                return
            if not self._check_auth(msg.sender,
                                    ("NewView", msg.view, msg.bit), msg.auth):
                return
            if not self._check_qc(msg.qc, below_view=msg.view):
                return
            self._verification.mark_valid(msg)
        self._absorb_qc(msg.qc)
        if self._is_leader(msg.view):
            self.new_views.setdefault(msg.view, {}).setdefault(
                msg.bit, {}).setdefault(msg.sender, msg)

    def _proposal_valid(self, msg: LeaderProposeMsg) -> bool:
        if msg.bit not in (0, 1):
            return False
        if not self._verification.check_proposal(
                self.config.proposer, msg.sender, msg.view, msg.bit,
                msg.auth):
            return False
        if msg.qc is not None:
            return self._check_qc(msg.qc, expected_bit=msg.bit,
                                  below_view=msg.view)
        # Fresh-value path: f + 1 distinct view-v attestations for the
        # bit.  Corrupt nodes alone are one short, so a bit no honest
        # node believes can never be proposed — agreement validity.
        senders = set()
        for attestation in msg.attestations:
            if (attestation.view != msg.view or attestation.bit != msg.bit
                    or attestation.qc is not None):
                return False
            if not self._check_auth(
                    attestation.sender,
                    ("NewView", attestation.view, attestation.bit),
                    attestation.auth):
                return False
            senders.add(attestation.sender)
        return len(senders) >= self.config.fallback_quorum

    def _handle_propose(self, msg: LeaderProposeMsg,
                        known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if not self._proposal_valid(msg):
                return
            self._verification.mark_valid(msg)
        self._absorb_qc(msg.qc)
        self.proposals.setdefault(msg.view, []).append(msg)

    def _handle_prevote(self, msg: PrevoteMsg, known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if msg.bit not in (0, 1):
                return
            if not self._check_auth(msg.sender,
                                    ("Vote", msg.view, msg.bit), msg.auth):
                return
            self._verification.mark_valid(msg)
        self._record_prevote(msg.view, msg.bit, msg.sender, msg.auth)

    def _record_prevote(self, view: int, bit: Bit, voter: NodeId,
                        auth: Any) -> None:
        votes = self.votes_seen.setdefault((view, bit), {})
        votes.setdefault(voter, auth)
        # A quorum of valid prevotes *is* a QC; assemble and lock it the
        # moment it forms (once locked at this rank, a larger vote set
        # could never outrank it — same skip as AbaNode._record_vote).
        if (len(votes) >= self.config.threshold
                and rank(self.locked) < view):
            self._absorb_qc(intern_payload(certificate_from_votes(
                view, bit, votes, self.config.threshold)))

    def _handle_precommit(self, msg: PrecommitMsg,
                          known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if msg.bit not in (0, 1):
                return
            if not self._check_auth(msg.sender,
                                    ("Precommit", msg.view, msg.bit),
                                    msg.auth):
                return
            self._verification.mark_valid(msg)
        self.precommits_seen.setdefault(
            (msg.view, msg.bit), {}).setdefault(msg.sender, msg)

    def _handle_decide(self, msg: LeaderDecideMsg,
                       known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if msg.bit not in (0, 1):
                return
            if not self._check_auth(msg.sender,
                                    ("Decide", msg.view, msg.bit), msg.auth):
                return
            senders = set()
            for precommit in msg.precommits:
                if (precommit.view != msg.view or precommit.bit != msg.bit
                        or not self._check_auth(
                            precommit.sender,
                            ("Precommit", precommit.view, precommit.bit),
                            precommit.auth)):
                    return
                senders.add(precommit.sender)
            if len(senders) < self.config.threshold:
                return
            self._verification.mark_valid(msg)
        # Adoption flows through the ordinary precommit tally: recording
        # the carried quorum makes _maybe_decide fire on it.
        recorded = self.precommits_seen.setdefault((msg.view, msg.bit), {})
        for precommit in msg.precommits:
            recorded.setdefault(precommit.sender, precommit)

    # -- decision ------------------------------------------------------------
    def _decide_msg(self, view: int, bit: Bit) -> Optional[LeaderDecideMsg]:
        auth = self.config.authenticator.attempt(
            self.node_id, ("Decide", view, bit))
        if auth is None:
            return None
        quorum = self.precommits_seen.get((view, bit), {})
        chosen = sorted(quorum.values(),
                        key=lambda p: p.sender)[:self.config.threshold]
        # Interned as a whole quorum, like the iterated BA's stripped
        # Terminate commits: every decider picks the same precommits, so
        # the content-equal tuples collapse to one object.
        precommits = intern_by_key(
            (LeaderDecideMsg, view, bit,
             tuple([(p.sender, _intern_field_key(p.auth)) for p in chosen])),
            lambda: tuple(chosen))
        return LeaderDecideMsg(view=view, bit=bit, precommits=precommits,
                               sender=self.node_id, auth=auth)

    def _maybe_decide(self, ctx: RoundContext) -> bool:
        """Settle every height whose precommit quorum is on hand; returns
        True when the final height decided (the node is done acting)."""
        ready = sorted(
            key for key, quorum in self.precommits_seen.items()
            if len(quorum) >= self.config.threshold)
        for view, bit in ready:
            height = self.config.height_of_view(view)
            if height in self.height_decisions:
                continue
            self.height_decisions[height] = (view, bit)
            if height >= self._belief_height:
                self.belief = bit
                self._belief_height = height
            message = self._decide_msg(view, bit)
            if message is not None:
                ctx.multicast(message)
            if height == self.config.heights:
                self.decide(bit, ctx.round)
                self._final_msg = message
                if ctx.round >= self.config.trusted_send_round:
                    self.halted = True
                return True
        return False

    # -- phase actions -------------------------------------------------------
    def _do_new_view(self, ctx: RoundContext, view: int) -> None:
        bit = self.belief
        auth = self.config.authenticator.attempt(
            self.node_id, ("NewView", view, bit))
        if auth is None:
            return
        message = NewViewMsg(view=view, bit=bit, qc=self.locked,
                             sender=self.node_id, auth=auth)
        ctx.multicast(message)
        if self._is_leader(view):
            self.new_views.setdefault(view, {}).setdefault(
                bit, {}).setdefault(self.node_id, message)

    def _do_propose(self, ctx: RoundContext, view: int) -> None:
        qc = self.locked
        attestations: Tuple[NewViewMsg, ...] = ()
        if qc is not None:
            bit = qc.bit
        else:
            # Fresh-value path: the bit with the widest f + 1 attestation
            # backing among this view's NewViews (own belief breaks ties).
            collected = self.new_views.get(view, {})
            backed = [b for b in (0, 1)
                      if len(collected.get(b, {}))
                      >= self.config.fallback_quorum]
            if not backed:
                return
            bit = max(backed, key=lambda b: (len(collected[b]),
                                             b == self.belief, -b))
            chosen = sorted(collected[bit].items())[
                :self.config.fallback_quorum]
            attestations = tuple(
                intern_payload(NewViewMsg(
                    view=view, bit=bit, qc=None,
                    sender=sender, auth=message.auth))
                for sender, message in chosen)
        auth = self.config.proposer.attempt(self.node_id, view, bit)
        if auth is None:
            return  # not this view's leader
        proposal = LeaderProposeMsg(view=view, bit=bit, qc=qc,
                                    attestations=attestations,
                                    sender=self.node_id, auth=auth)
        ctx.multicast(proposal)
        self.proposals.setdefault(view, []).append(proposal)

    def _acceptable(self, proposal: LeaderProposeMsg) -> bool:
        """The prevote lock rule (receiver-local, never cached)."""
        if proposal.qc is None:
            return self.locked is None
        if self.locked is None:
            return True
        return (proposal.qc.iteration >= self.locked.iteration
                or proposal.bit == self.locked.bit)

    def _do_prevote(self, ctx: RoundContext, view: int) -> None:
        acceptable = [proposal for proposal in self.proposals.get(view, [])
                      if self._acceptable(proposal)]
        if not acceptable:
            return
        chosen = max(acceptable, key=lambda p: (rank(p.qc), -p.bit))
        auth = self.config.authenticator.attempt(
            self.node_id, ("Vote", view, chosen.bit))
        if auth is None:
            return
        ctx.multicast(PrevoteMsg(view=view, bit=chosen.bit,
                                 sender=self.node_id, auth=auth))
        # Count the node's own prevote (the network does not self-deliver).
        self._record_prevote(view, chosen.bit, self.node_id, auth)

    def _do_precommit(self, ctx: RoundContext, view: int) -> None:
        for bit in (0, 1):
            votes = self.votes_seen.get((view, bit), {})
            if len(votes) < self.config.threshold:
                continue
            self._absorb_qc(intern_payload(certificate_from_votes(
                view, bit, votes, self.config.threshold)))
            auth = self.config.authenticator.attempt(
                self.node_id, ("Precommit", view, bit))
            if auth is not None:
                message = PrecommitMsg(view=view, bit=bit,
                                       sender=self.node_id, auth=auth)
                ctx.multicast(message)
                self.precommits_seen.setdefault(
                    (view, bit), {}).setdefault(self.node_id, message)
            # At most one precommit per view.  Quorum intersection
            # (n - 2f > f overlap) makes a same-view quorum for the
            # other bit impossible; stopping here turns that safety
            # argument into an explicit structural invariant instead of
            # an assumption about the vote tallies.
            break

    # -- main entry point ----------------------------------------------------
    def on_round(self, ctx: RoundContext) -> None:
        if self._final_msg is not None:
            # Decided before sends were trusted: re-announce at each view
            # boundary until one announcement provably reaches everyone,
            # then halt (the GST-aware drain — see the module docstring).
            if ctx.round % VIEW_ROUNDS == 0:
                ctx.multicast(self._final_msg)
                if ctx.round >= self.config.trusted_send_round:
                    self.halted = True
            return
        self._process_inbox(ctx)
        if self._maybe_decide(ctx):
            return
        view, phase = schedule(ctx.round)
        if view > self.config.total_views:
            # Budget exhausted without a final-height decision.
            self.halted = True
            return
        if self.config.height_of_view(view) in self.height_decisions:
            return  # this height is settled; idle out its window
        if phase == PHASE_NEW_VIEW:
            self._do_new_view(ctx, view)
        elif phase == PHASE_PROPOSE:
            self._do_propose(ctx, view)
        elif phase == PHASE_PREVOTE:
            self._do_prevote(ctx, view)
        elif phase == PHASE_PRECOMMIT:
            self._do_precommit(ctx, view)

    def output(self) -> Optional[Bit]:
        decision = self.height_decisions.get(self.config.heights)
        return decision[1] if decision is not None else None

    def finalize(self) -> Bit:
        decided = self.output()
        return decided if decided is not None else self.belief


# ---------------------------------------------------------------------------
# Builders.
# ---------------------------------------------------------------------------


def build_leader_ba(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    heights: int = 1,
    views_per_height: Optional[int] = None,
    registry_mode: str = IDEAL_MODE,
    group: SchnorrGroup = TEST_GROUP,
    oracle: Optional[LeaderOracle] = None,
    conditions: Optional[NetworkConditions] = None,
) -> ProtocolInstance:
    """Construct a leader-BA execution over ``n`` nodes.

    ``f`` must satisfy ``n > 3f`` (the partial-synchrony optimum);
    quorums are ``n - f``, so any two intersect in ``n - 2f > f`` nodes
    for every admitted ``n`` — not just ``n = 3f + 1``, where ``n - f``
    coincides with the textbook ``2f + 1``.  ``conditions`` — the same
    :class:`~repro.sim.conditions.NetworkConditions` the engine will run
    under — derives the view-timer budget and the decide-announcement
    drain gate from Δ/GST; ``None`` (or perfect conditions) is
    lock-step, where every round is trusted and the budget is ``f + 3``
    views per height.
    """
    if len(inputs) != n:
        raise ConfigurationError("need exactly one input bit per node")
    if not n > 3 * f:
        raise ConfigurationError(
            f"leader BA requires f < n/3: n={n}, f={f}")
    if heights < 1:
        raise ConfigurationError(f"need at least one height, got {heights}")
    if views_per_height is None:
        views_per_height = default_views_per_height(f, conditions)
    if views_per_height < 1:
        raise ConfigurationError(
            f"need at least one view per height, got {views_per_height}")
    registry = KeyRegistry(n, registry_mode, group, seed)
    authenticator = SignatureAuthenticator(registry)
    leader_oracle = oracle if oracle is not None else RoundRobinLeaderOracle(n)
    config = LeaderBaConfig(
        threshold=n - f,
        fallback_quorum=f + 1,
        authenticator=authenticator,
        proposer=OracleProposerPolicy(leader_oracle, authenticator),
        views_per_height=views_per_height,
        heights=heights,
        trusted_send_round=trusted_send_round_for(conditions),
    )
    nodes = [LeaderBaNode(node_id, n, inputs[node_id], config)
             for node_id in range(n)]
    return ProtocolInstance(
        name="leader-ba" if heights == 1 else "leader-chain",
        nodes=nodes,
        max_rounds=rounds_for_views(config.total_views),
        inputs={i: inputs[i] for i in range(n)},
        signing_capabilities=[registry.capability_for(i) for i in range(n)],
        mining_capabilities=[],
        services={
            "registry": registry,
            "authenticator": authenticator,
            "oracle": leader_oracle,
            "threshold": config.threshold,
            "config": config,
        },
    )


def build_leader_chain(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    heights: int = DEFAULT_CHAIN_HEIGHTS,
    views_per_height: Optional[int] = None,
    registry_mode: str = IDEAL_MODE,
    group: SchnorrGroup = TEST_GROUP,
    oracle: Optional[LeaderOracle] = None,
    conditions: Optional[NetworkConditions] = None,
) -> ProtocolInstance:
    """The multi-height chain workload: ``heights`` repeated leader-BA
    instances through one view schedule, locks and beliefs carried
    across height boundaries (see the module docstring).  The heavy-
    traffic scenario axis — per-view NewView/Propose/Prevote/Precommit
    traffic sustained over every height window."""
    return build_leader_ba(
        n, f, inputs, seed=seed, heights=heights,
        views_per_height=views_per_height, registry_mode=registry_mode,
        group=group, oracle=oracle, conditions=conditions)
