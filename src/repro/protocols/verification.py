"""Content-addressed verification memoization shared by protocol nodes.

The simulation passes message objects by reference, but every node
assembles its *own* certificate objects from the votes it saw — so two
structurally-equal certificates almost never share an ``id()``.  Keying
verification caches by object identity (the historical approach) therefore
re-verified the same bytes once per content-equal copy: at n = 192 a
single quadratic-BA run performed ~4.9M redundant signature checks.

This module keys by **content**.  Verification of votes, certificates, and
proposals is a *public* predicate — authenticators and eligibility
lotteries are deterministic functions any party can evaluate, and the
result does not depend on which node performs the check — so one
:class:`VerificationCache` is shared by every node of a protocol instance
(via its config).  Soundness rests on two invariants:

**Keys cover everything the verifier reads.**  A vote entry is keyed by
``(voter, iteration, bit, auth)`` — the ``auth`` term is load-bearing:
without it, a tampered vote carrying a forged auth would collide with a
previously-verified honest vote and poison the cache.  Certificates are
keyed by their full structural content (iteration, bit, and the exact
vote tuple including every ``auth``); proposals by
``(sender, iteration, bit, auth)``.  Keys are
:func:`~repro.serialization.type_tagged` because dict equality is coarser
than canonical-bytes equality (``True == 1``, but they sign differently).

**Only positive results are shared.**  A ``True`` is permanent — ideal
signatures stay issued, ``Fmine`` coins stay recorded, real
signatures/VRFs are pure — but a ``False`` can legitimately become
``True`` later (e.g. an adversary circulates a forged ticket *before* the
honest node mines that topic; once mined, the content-equal honest ticket
is valid).  Negative results are therefore never shared across nodes;
nodes that want the seed semantics of "each *object* checked once" keep a
per-node identity front (see ``AbaNode._check_certificate``) whose
entries pin their object, so a recycled ``id()`` can never alias.

Messages with unhashable ``auth`` objects fall back to direct
verification (no caching), so cache entries can never go stale when
payload objects are garbage-collected (e.g. under the engine's
``metrics-only`` transcript retention).

``CACHING_ENABLED`` exists for differential testing: determinism tests
flip it off and assert byte-identical execution results either way.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.protocols.base import Authenticator, ProposerPolicy
from repro.protocols.certificates import Certificate, verify_certificate
from repro.protocols.messages import SignedVote
from repro.serialization import type_tagged
from repro.types import Bit, NodeId

#: Global kill-switch used by determinism tests; leave True in production.
CACHING_ENABLED = True

#: Per-table entry cap.  The identity fronts pin their objects, so an
#: unbounded execution (the metrics-only retention use case) would grow
#: resident memory O(total messages); clearing a table is always sound —
#: entries are positive memos or recomputable keys — and only costs
#: re-verification.
CACHE_LIMIT = 1 << 20


def _trim(table) -> None:
    if len(table) >= CACHE_LIMIT:
        table.clear()


class VerificationCache:
    """Positive-result memo for the pure verification predicates of one
    execution.

    One instance per protocol instance, shared by its nodes through the
    protocol config: the predicates are public, so the first recipient's
    successful verification serves every other node.
    """

    __slots__ = ("_auth", "_auth_keys", "_certs", "_cert_keys",
                 "_cert_true_by_id", "_proposals", "valid_payloads")

    def __init__(self) -> None:
        # type_tagged (node_id, topic, auth) of verified checks; covers
        # votes, status, commit, terminate, and commit-reference checks.
        self._auth: set = set()
        # id(auth) -> (pinned auth, its type_tagged form): the same auth
        # object is checked by every recipient of its message, so its
        # (recursive) tag is built once; the pin keeps the id from being
        # recycled.
        self._auth_keys: Dict[int, Tuple[Any, Any]] = {}
        # type_tagged structural content of certificates that verified.
        self._certs: set = set()
        # id(certificate) -> (pinned certificate, its type_tagged key).
        self._cert_keys: Dict[int, Tuple[Certificate, Any]] = {}
        # Positive-only identity front: certificate objects known to have
        # verified, so the n - 1 later recipients of the same object skip
        # even the O(threshold) content-key hash.  Negative results are
        # deliberately NOT stored here (see module docstring).
        self._cert_true_by_id: Dict[int, Tuple[Certificate]] = {}
        # type_tagged (sender, iteration, bit, auth) of verified proposals.
        self._proposals: set = set()
        # Positive-only identity front over whole message payloads: the
        # simulation hands every recipient the *same* frozen payload
        # object, and a message's validation (auth checks, certificate
        # checks, structural checks — everything except the recipient's
        # own state updates) is a pure public predicate, so once any node
        # validated an object, the other n - 1 recipients skip straight
        # to their state updates.  Entries pin the object (no id
        # recycling) and only successes are stored — a failed validation
        # is re-attempted per recipient, because a ``False`` can become
        # ``True`` later (see module docstring).
        self.valid_payloads: Dict[int, Tuple[Any, ...]] = {}

    def is_known_valid(self, payload: Any) -> bool:
        """Has this exact payload object already passed full validation?"""
        if not CACHING_ENABLED:
            return False
        entry = self.valid_payloads.get(id(payload))
        return entry is not None and entry[0] is payload

    def mark_valid(self, payload: Any) -> None:
        """Record that this payload object passed full validation."""
        if not CACHING_ENABLED:
            return
        _trim(self.valid_payloads)
        self.valid_payloads[id(payload)] = (payload,)

    def _auth_key_of(self, auth: Any) -> Any:
        entry = self._auth_keys.get(id(auth))
        if entry is not None and entry[0] is auth:
            return entry[1]
        key = type_tagged(auth)
        _trim(self._auth_keys)
        self._auth_keys[id(auth)] = (auth, key)
        return key

    def check_auth(self, authenticator: Authenticator, node_id: NodeId,
                   topic: Any, auth: Any) -> bool:
        """Memoized ``authenticator.check`` (content-keyed, auth included)."""
        if not CACHING_ENABLED:
            return authenticator.check(node_id, topic, auth)
        try:
            key = (type_tagged(node_id), type_tagged(topic),
                   self._auth_key_of(auth))
            if key in self._auth:
                return True
        except TypeError:  # unhashable auth: verify directly, never cache
            return authenticator.check(node_id, topic, auth)
        valid = authenticator.check(node_id, topic, auth)
        if valid:
            _trim(self._auth)
            self._auth.add(key)
        return valid

    def check_vote(self, authenticator: Authenticator,
                   vote: SignedVote) -> bool:
        """Memoized vote check, keyed ``(voter, iteration, bit, auth)``.

        Shares entries with :meth:`check_auth` — a vote arriving inside a
        certificate and the same vote arriving as a ``VoteMsg`` hit the
        same cache line.
        """
        return self.check_auth(authenticator, vote.voter,
                               ("Vote", vote.iteration, vote.bit), vote.auth)

    def _certificate_key(self, certificate: Certificate) -> Any:
        entry = self._cert_keys.get(id(certificate))
        if entry is not None and entry[0] is certificate:
            return entry[1]
        key = type_tagged(
            (certificate.iteration, certificate.bit, certificate.votes))
        _trim(self._cert_keys)
        self._cert_keys[id(certificate)] = (certificate, key)
        return key

    def check_certificate(self, certificate: Certificate, threshold: int,
                          check_vote: Callable[[SignedVote], bool]) -> bool:
        """Memoized ``verify_certificate``, keyed by structural content."""
        if not CACHING_ENABLED:
            return verify_certificate(certificate, threshold, check_vote)
        entry = self._cert_true_by_id.get(id(certificate))
        if entry is not None and entry[0] is certificate:
            return True
        key = self._certificate_key(certificate)
        try:
            if key in self._certs:
                _trim(self._cert_true_by_id)
                self._cert_true_by_id[id(certificate)] = (certificate,)
                return True
        except TypeError:  # unhashable vote auth somewhere inside
            return verify_certificate(certificate, threshold, check_vote)
        valid = verify_certificate(certificate, threshold, check_vote)
        if valid:
            _trim(self._certs)
            self._certs.add(key)
            _trim(self._cert_true_by_id)
            self._cert_true_by_id[id(certificate)] = (certificate,)
        return valid

    def check_proposal(self, proposer: ProposerPolicy, sender: NodeId,
                       iteration: int, bit: Bit, auth: Any) -> bool:
        """Memoized ``proposer.check`` (votes re-attach the same proposal
        n times per round — footnote 11)."""
        if not CACHING_ENABLED:
            return proposer.check(sender, iteration, bit, auth)
        try:
            key = (type_tagged(sender), type_tagged(iteration),
                   type_tagged(bit), self._auth_key_of(auth))
            if key in self._proposals:
                return True
        except TypeError:
            return proposer.check(sender, iteration, bit, auth)
        valid = proposer.check(sender, iteration, bit, auth)
        if valid:
            _trim(self._proposals)
            self._proposals.add(key)
        return valid
