"""Dolev–Strong authenticated Byzantine Broadcast [13].

The classic baseline the paper's Section 1 positions against: tolerates
any ``f < n`` corruptions given a PKI, runs in ``f + 1`` rounds, and
inherently costs at least quadratic communication — every node relays
every newly-extracted bit with its signature chain.

Protocol (signature chains):

- Round 0: the designated sender signs its bit and multicasts it.
- Round ``r``: upon receiving a bit with a chain of ``r`` valid signatures
  from distinct nodes, the first being the sender's, a node adds the bit
  to its extracted set; if ``r <= f`` it appends its own signature and
  multicasts the extended chain (once per bit).
- After round ``f + 1``: output the unique extracted bit, else a default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Set, Tuple

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.crypto.registry import IDEAL_MODE, KeyRegistry
from repro.errors import ConfigurationError
from repro.protocols.base import ProtocolInstance
from repro.rng import Seed
from repro.sim.node import Node, RoundContext
from repro.types import BROADCAST_SENDER, Bit, NodeId


@dataclass(frozen=True)
class ChainMsg:
    """A bit with its signature chain ``((signer, signature), ...)``."""

    bit: Bit
    chain: Tuple[Tuple[NodeId, Any], ...]


class DolevStrongNode(Node):
    """One party of Dolev–Strong broadcast."""

    def __init__(self, node_id: NodeId, n: int, f: int,
                 registry: KeyRegistry,
                 sender: NodeId = BROADCAST_SENDER,
                 sender_input: Optional[Bit] = None,
                 default_output: Bit = 0) -> None:
        super().__init__(node_id, n)
        self.f = f
        self.registry = registry
        self.sender = sender
        self.sender_input = sender_input
        self.default_output = default_output
        self.extracted: Set[Bit] = set()
        self._relayed: Set[Bit] = set()
        self._capability = registry.capability_for(node_id)

    def _chain_valid(self, msg: ChainMsg, round_index: int) -> bool:
        """A round-r acceptance needs r distinct valid signatures,
        starting with the sender's."""
        if msg.bit not in (0, 1):
            return False
        chain = msg.chain
        if len(chain) < round_index:
            return False
        signers = [signer for signer, _sig in chain]
        if len(set(signers)) != len(signers):
            return False
        if not signers or signers[0] != self.sender:
            return False
        return all(
            self.registry.verify(signer, ("ds", self.sender, msg.bit), signature)
            for signer, signature in chain
        )

    def _extract_and_relay(self, ctx: RoundContext, msg: ChainMsg) -> None:
        if msg.bit in self.extracted:
            return
        if not self._chain_valid(msg, ctx.round):
            return
        self.extracted.add(msg.bit)
        if ctx.round <= self.f and msg.bit not in self._relayed:
            self._relayed.add(msg.bit)
            own = self._capability.sign(("ds", self.sender, msg.bit))
            ctx.multicast(ChainMsg(
                bit=msg.bit, chain=msg.chain + ((self.node_id, own),)))

    def on_round(self, ctx: RoundContext) -> None:
        if ctx.round == 0:
            if self.node_id == self.sender:
                bit = self.sender_input if self.sender_input is not None else 0
                signature = self._capability.sign(("ds", self.sender, bit))
                ctx.multicast(ChainMsg(bit=bit,
                                       chain=((self.sender, signature),)))
                self.extracted.add(bit)
                self._relayed.add(bit)
            return
        for delivery in ctx.inbox:
            if isinstance(delivery.payload, ChainMsg):
                self._extract_and_relay(ctx, delivery.payload)
        if ctx.round >= self.f + 1:
            self.decide(self.finalize(), ctx.round)
            self.halted = True

    def output(self) -> Optional[Bit]:
        if not self.halted:
            return None
        return self.finalize()

    def finalize(self) -> Bit:
        if len(self.extracted) == 1:
            return next(iter(self.extracted))
        return self.default_output


def build_dolev_strong(
    n: int,
    f: int,
    sender_input: Bit,
    seed: Seed = 0,
    sender: NodeId = BROADCAST_SENDER,
    registry_mode: str = IDEAL_MODE,
    group: SchnorrGroup = TEST_GROUP,
) -> ProtocolInstance:
    """Dolev–Strong broadcast; tolerates any ``f < n``."""
    if not 0 <= f < n:
        raise ConfigurationError(f"need 0 <= f < n, got f={f}, n={n}")
    registry = KeyRegistry(n, registry_mode, group, seed)
    nodes = [
        DolevStrongNode(
            node_id, n, f, registry, sender=sender,
            sender_input=sender_input if node_id == sender else None)
        for node_id in range(n)
    ]
    return ProtocolInstance(
        name="dolev-strong",
        nodes=nodes,
        max_rounds=f + 3,
        inputs={sender: sender_input},
        signing_capabilities=[registry.capability_for(i) for i in range(n)],
        mining_capabilities=[],
        services={"registry": registry, "sender": sender},
    )
