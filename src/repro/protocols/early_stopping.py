"""GST-aware early-stopping variants of the warmup protocols.

The paper's protocols are stated against a worst-case round budget:
phase-king always runs its ``R = ω(log κ)`` epochs, and the iterated BA
provisions ``max_iterations`` iterations even though it usually decides
in the first.  Their practical cost under a *good* network is therefore
the budget, not the behaviour — the "optimistic responsiveness" gap that
Momose–Ren (Optimal Communication Complexity of Authenticated Byzantine
Agreement) and Cohen–Keidar–Spiegelman (Make Every Word Count) close for
their protocols.

These builders produce variants that close it here: nodes watch for a
*certified round* — an iteration or epoch whose authenticated messages
are unanimous across all ``n`` nodes — and terminate the moment one is
observed, exposing the payoff as ``rounds_saved`` on
:class:`~repro.sim.result.ExecutionResult` and
:class:`~repro.harness.runner.TrialStats`.

The "GST-aware" part is what keeps the detectors sound under partial
synchrony: a unanimous-looking round observed while the network may
still drop copies (before GST) or hold them behind an unhealed
partition can be an artifact of one node's view, and acting on it
breaks agreement.  The builders therefore accept the execution's
:class:`~repro.sim.conditions.NetworkConditions` and gate detection on
:attr:`~repro.sim.conditions.NetworkConditions.trusted_send_round` —
the first protocol round whose sends provably reach every honest node.
Under lock-step (``conditions=None`` or perfect) every round is
trusted, and under adversarial corruption the detectors simply never
fire (a crashed node ACKs nothing, so unanimity is unobservable):
``rounds_saved`` degrades to 0 and the variants behave exactly like
their fixed-budget originals.

See ``docs/PROTOCOLS.md`` for the per-protocol safety arguments.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.crypto.registry import IDEAL_MODE
from repro.protocols.base import ProtocolInstance
from repro.protocols.phase_king import DEFAULT_EPOCHS, build_phase_king
from repro.protocols.quadratic_ba import (
    DEFAULT_MAX_ITERATIONS,
    build_quadratic_ba,
)
from repro.rng import Seed
from repro.sim.conditions import NetworkConditions
from repro.sim.leader import LeaderOracle
from repro.types import Bit, Round

__all__ = [
    "build_phase_king_early_stop",
    "build_quadratic_ba_early_stop",
    "trusted_send_round_for",
]


def trusted_send_round_for(conditions: Optional[NetworkConditions]) -> Round:
    """The first protocol round the early-stop detectors may trust.

    ``None`` (and perfect conditions) is lock-step synchrony: every
    round's sends reach everyone, so detection is trusted from round 0.
    """
    if conditions is None:
        return 0
    return conditions.trusted_send_round


def build_quadratic_ba_early_stop(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    registry_mode: str = IDEAL_MODE,
    group: SchnorrGroup = TEST_GROUP,
    oracle: Optional[LeaderOracle] = None,
    conditions: Optional[NetworkConditions] = None,
) -> ProtocolInstance:
    """Quadratic BA with the unanimous-vote fast decide.

    Identical to :func:`build_quadratic_ba` until some iteration's votes
    are unanimous — authenticated votes for one bit from all ``n`` nodes
    — at a trusted round; then the node decides at the Commit round
    instead of waiting a further round for the commit quorum.  Sound
    because a unanimous vote round leaves at most ``f < f + 1`` possible
    opposite votes, so no conflicting certificate can ever form; the
    node still multicasts its own commit first, so slower nodes (whose
    view an equivocating adversary can keep just short of unanimity)
    terminate through the unchanged quorum machinery.
    """
    instance = build_quadratic_ba(
        n, f, inputs, seed=seed, max_iterations=max_iterations,
        registry_mode=registry_mode, group=group, oracle=oracle)
    config = instance.services["config"]
    config.early_stop_unanimity = True
    config.trusted_send_round = trusted_send_round_for(conditions)
    instance.name = "quadratic-ba-early-stop"
    return instance


def build_phase_king_early_stop(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    epochs: int = DEFAULT_EPOCHS,
    registry_mode: str = IDEAL_MODE,
    group: SchnorrGroup = TEST_GROUP,
    oracle: Optional[LeaderOracle] = None,
    conditions: Optional[NetworkConditions] = None,
) -> ProtocolInstance:
    """Phase-king with unanimity-certificate early stopping.

    Identical to :func:`build_phase_king` until some epoch's ACKs are
    unanimous — authenticated ACKs for one bit from all ``n`` nodes — at
    a trusted round; then the node multicasts the ACK set as a
    transferable unanimity certificate
    (:class:`~repro.protocols.messages.PhaseKingDecideMsg`) and halts.
    Every other honest node receives the certificate, adopts the bit,
    and halts one round later, so the whole execution finishes in
    ``O(convergence)`` epochs instead of the fixed ``R`` — the dominant
    saving, since phase-king never stops early on its own.
    """
    instance = build_phase_king(
        n, f, inputs, seed=seed, epochs=epochs,
        registry_mode=registry_mode, group=group, oracle=oracle)
    config = instance.services["config"]
    config.early_stop_unanimity = True
    config.trusted_send_round = trusted_send_round_for(conditions)
    instance.name = "phase-king-early-stop"
    return instance
