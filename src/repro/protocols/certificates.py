"""Certificates: quorums of votes, and their ranking by iteration.

Appendix C.1: *"a collection of f + 1 (signed) iteration-r Vote messages
for the same bit b from distinct nodes is said to be an iteration-r
certificate for b"* (λ/2 votes in the subquadratic protocol).  Bits with
no certificate are treated as holding an *iteration-0 certificate*, the
lowest rank; here that is represented by ``certificate=None`` and
:func:`rank` mapping ``None`` to 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.protocols.messages import SignedVote
from repro.serialization import _intern_field_key, intern_by_key, intern_payload
from repro.types import Bit

#: Rank of the fictitious iteration-0 certificate (no certificate at all).
GENESIS_RANK = 0


@dataclass(frozen=True)
class Certificate:
    """An iteration-``r`` certificate for ``bit``: a quorum of votes."""

    iteration: int
    bit: Bit
    votes: Tuple[SignedVote, ...]

    @property
    def rank(self) -> int:
        return self.iteration


def rank(certificate: Optional[Certificate]) -> int:
    """Rank of a certificate, with ``None`` as the iteration-0 bottom."""
    return GENESIS_RANK if certificate is None else certificate.rank


def certificate_from_votes(iteration: int, bit: Bit,
                           votes: dict, threshold: int) -> Certificate:
    """Assemble a certificate from a voter → auth map (caller-validated).

    Votes are ordered by voter id so the certificate bytes are canonical;
    only ``threshold`` votes are included — the minimum needed — keeping
    the message size at the paper's O(λ(log κ + log n)).

    Each wrapped vote is interned: every node wraps the same (shared)
    auth objects into content-equal ``SignedVote`` copies, and the arena
    collapses those to one object per vote, so identity-keyed memos
    (size accounting, tag caches) hit across all assemblers.
    """
    chosen = sorted(votes.items())[:threshold]
    # Assembly itself is interned: every honest node assembles this same
    # certificate from the same quorum of (shared) auth objects, so after
    # the first build the others resolve with one key construction and no
    # SignedVote wrapping at all.  The key pins its auth ids through the
    # representative's votes; vote wrapping inside the first build is
    # interned too, so vote objects are shared even across certificates.
    key = (Certificate, iteration, bit,
           tuple([(voter, _intern_field_key(auth))
                  for voter, auth in chosen]))
    return intern_by_key(key, lambda: Certificate(
        iteration=iteration,
        bit=bit,
        votes=tuple(
            intern_payload(SignedVote(iteration=iteration, bit=bit,
                                      voter=voter, auth=auth))
            for voter, auth in chosen),
    ))


def verify_certificate(certificate: Certificate, threshold: int,
                       check_vote: Callable[[SignedVote], bool]) -> bool:
    """Structural + cryptographic validity of a certificate.

    ``check_vote`` performs the mode-specific authentication (signature
    verification in the quadratic world, ``Fmine.verify``/VRF verification
    in the subquadratic world).
    """
    if certificate.iteration < 1:
        return False
    if certificate.bit not in (0, 1):
        return False
    voters = {vote.voter for vote in certificate.votes}
    if len(voters) != len(certificate.votes):
        return False  # duplicate voters
    if len(voters) < threshold:
        return False
    for vote in certificate.votes:
        if vote.iteration != certificate.iteration or vote.bit != certificate.bit:
            return False
        if not check_vote(vote):
            return False
    return True
