"""Results book: a publishable document rendered from an experiment store.

Surveys of this literature (Cohen–Keidar–Naor's *Byzantine Agreement
with Less Communication*, Momose–Ren's *Optimal Communication Complexity
of Byzantine Agreement*) organize results as comparable tables across
regimes; this module renders our artifacts the same way.  Given a
populated :class:`~repro.harness.store.ExperimentStore`, it produces a
static Markdown (or HTML) **results book**: a provenance header (store
salt, schema, git describe, Python version), one section per recorded
sweep — description, completeness, content digest, and the metrics
table, built by the *same* row-to-table code the live
:class:`~repro.harness.scenarios.SweepResult` uses, so book tables match
live sweep tables exactly — plus, when a previous snapshot is supplied,
per-sweep deltas (cells added/removed, and a loud warning for any cell
whose fingerprint is unchanged but whose row differs, which indicates
nondeterminism or an overdue salt bump).

Alongside the book a machine-readable ``*.json`` snapshot is written;
pass it as the next run's ``--baseline`` to get the deltas.  Entry
point: ``python -m repro report`` (see ``docs/RESULTS.md``).
"""

from __future__ import annotations

import hashlib
import html as html_module
import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.store import ExperimentStore
from repro.harness.tables import rows_to_table


def git_describe(root) -> str:
    """Best-effort ``git describe`` of the working tree (provenance
    only; "unknown" outside a repo or without git)."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=str(root), capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown"


def _sweep_digest(fingerprints: List[str]) -> str:
    """A short content digest over a sweep's cell fingerprints, in
    order — two stores recorded the same sweep iff the digests match."""
    joined = "\n".join(fingerprints)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


def _presentation_order(names: List[str]) -> List[str]:
    """Known library sweeps in registration order (headline sweeps
    first), then anything else alphabetically."""
    from repro.harness.sweep_library import SWEEP_ORDER

    rank = {name: index for index, name in enumerate(SWEEP_ORDER)}
    return sorted(names, key=lambda name: (rank.get(name, len(rank)), name))


def build_snapshot(store: ExperimentStore) -> Dict[str, Any]:
    """A machine-readable snapshot of every sweep recorded in the store
    (what ``--baseline`` consumes on the next run), in presentation
    order."""
    sweeps: Dict[str, Any] = {}
    for name in _presentation_order(store.sweep_names()):
        record = store.load_sweep(name)
        if record is None:
            continue
        # Rows aligned with the cell expansion (None = unavailable):
        # the sweep record's own rows carry run-time labels even when
        # two cells share a fingerprint; holes fall back to cell
        # records, so a section heals as concurrent shards land.
        rows = store.sweep_rows_aligned(name, record=record)
        sweeps[name] = {
            "description": record.get("description", ""),
            "recorded_at": record.get("recorded_at", ""),
            "salt": record.get("salt", ""),
            # Completeness is re-derived from row availability rather
            # than trusted from the sweep record: a later shard filling
            # in the missing cells heals the section, and a record
            # pruned by hand un-completes it.
            "complete": all(row is not None for row in rows),
            "cells": list(record["cells"]),
            "rows": rows,
        }
    return {
        "schema": store.SCHEMA,
        "salt": store.salt,
        "sweeps": sweeps,
    }


#: Row columns outside the cell fingerprint: labels the binding layer
#: records for display but whose underlying value is fingerprinted in
#: resolved form (``f_fraction`` resolves to ``f``; ``network``/
#: ``topology`` labels stand for structurally-fingerprinted values) or
#: not at all (``scenario``).  Baseline deltas ignore them — relabeling
#: must not read as a changed result.
_DISPLAY_ONLY_ROW_KEYS = frozenset(
    {"scenario", "f_fraction", "network", "topology"})


def _sweep_delta(current: Dict[str, Any],
                 baseline: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Compare one sweep's snapshot entry against a baseline entry.

    Membership is judged on the ``cells`` lists (the sweep's recorded
    expansion), not on which record files happen to be readable — a
    hand-pruned record must not masquerade as a removed cell.  ``changed``
    flags cells present in both whose rows differ ignoring the
    display-only columns (:data:`_DISPLAY_ONLY_ROW_KEYS` — row columns
    outside the fingerprint): a scenario rename or an equivalent
    relabeling must not trip the nondeterminism warning.
    """
    if baseline is None:
        return None

    def row_map(entry: Dict[str, Any]) -> Dict[str, Any]:
        return {fp: {key: value for key, value in row.items()
                     if key not in _DISPLAY_ONLY_ROW_KEYS}
                for fp, row in zip(entry.get("cells", []),
                                   entry.get("rows", []))
                if row is not None}

    current_cells = set(current["cells"])
    baseline_cells = set(baseline.get("cells", []))
    current_rows = row_map(current)
    baseline_rows = row_map(baseline)
    added = [fp for fp in current["cells"] if fp not in baseline_cells]
    removed = [fp for fp in baseline.get("cells", [])
               if fp not in current_cells]
    changed = [fp for fp in dict.fromkeys(current["cells"])
               if fp in baseline_cells
               and fp in current_rows and fp in baseline_rows
               and baseline_rows[fp] != current_rows[fp]]
    return {"added": added, "removed": removed, "changed": changed}


def _leader_comparison_rows(
        rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The ``leader-vs-quadratic`` words-vs-n digest: per system size,
    the leader family's words per decision next to quadratic BA's and
    the Dolev-Reischuk counting attack's Ω(f²) message floor."""
    by_n: Dict[Any, Dict[str, Any]] = {}
    for row in rows:
        n = row.get("n")
        if n is None:
            continue
        slot = by_n.setdefault(n, {})
        if row.get("scenario") == "leader-ba":
            slot["leader_words"] = row.get("mean_multicast_bits")
            slot["leader_views"] = row.get("mean_views_executed")
        elif row.get("scenario") == "quadratic":
            slot["quadratic_words"] = row.get("mean_multicast_bits")
        elif row.get("executor") == "dolev-reischuk":
            slot["dolev_reischuk_floor_msgs"] = row.get("message_budget")
    return [{"n": n, **slot}
            for n, slot in sorted(by_n.items()) if len(slot) > 1]


def _adaptive_comparison_rows(
        rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The ``words-vs-actual-f`` digest: per actual fault count f*, the
    adaptive family's total words (and escalation epochs) next to the
    non-adaptive baselines' words at the same ``(n, f)`` and the
    Dolev-Reischuk counting attack's Ω(f²) message floor.

    The baselines are multicast-only protocols, so their classical word
    count is ``mean_multicasts * (n - 1)`` (Definition 6); the adaptive
    rows carry their own ``mean_words`` column because the fast path is
    built from unicasts the multicast columns do not see.
    """
    by_k: Dict[Any, Dict[str, Any]] = {}
    floor_msgs: Any = None
    for row in rows:
        if row.get("executor") == "dolev-reischuk":
            floor_msgs = row.get("message_budget")
            continue
        k = row.get("adversary_actual")
        n = row.get("n")
        if k is None or n is None:
            continue
        slot = by_k.setdefault(k, {})
        scenario = row.get("scenario")
        if scenario == "adaptive-ba":
            slot["adaptive_words"] = row.get("mean_words")
            slot["escalations"] = row.get("mean_escalations")
        elif scenario == "quadratic":
            multicasts = row.get("mean_multicasts")
            if multicasts is not None:
                slot["quadratic_words"] = multicasts * (n - 1)
        elif scenario == "leader-ba":
            multicasts = row.get("mean_multicasts")
            if multicasts is not None:
                slot["leader_words"] = multicasts * (n - 1)
    digest = [{"actual_faults": k, **slot}
              for k, slot in sorted(by_k.items()) if len(slot) > 1]
    if floor_msgs is not None:
        for row in digest:
            row["dolev_reischuk_floor_msgs"] = floor_msgs
    return digest


def render_book(store: ExperimentStore,
                baseline: Optional[Dict[str, Any]] = None,
                fmt: str = "md",
                live_refresh: Optional[int] = None,
                ) -> Tuple[str, Dict[str, Any]]:
    """Render the results book; returns ``(document, snapshot)``.

    ``fmt`` is ``"md"`` (GitHub-flavoured Markdown) or ``"html"`` (a
    self-contained page with the same content).  ``baseline`` is a
    snapshot dict from a previous run's ``*.json``.  ``live_refresh``
    (HTML only) adds a meta-refresh of that many seconds — the
    experiment service uses it to serve the book as a live page that
    tracks the store as jobs record cells.
    """
    if fmt not in ("md", "html"):
        raise ValueError(f"format must be 'md' or 'html', got {fmt!r}")
    snapshot = build_snapshot(store)
    generated_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    total_cells = sum(len(entry["cells"])
                      for entry in snapshot["sweeps"].values())

    lines: List[str] = []
    lines.append("# Results book — Communication Complexity of "
                 "Byzantine Agreement, Revisited")
    lines.append("")
    lines.append("Rendered from an experiment store snapshot "
                 "(see docs/RESULTS.md for the store and fingerprint "
                 "scheme).")
    lines.append("")
    lines.append("## Provenance")
    lines.append("")
    lines.append(f"- store: `{store.root}`")
    lines.append(f"- fingerprint salt: `{store.salt}` "
                 f"(schema {store.SCHEMA})")
    # Describe the tree the repro package was imported from, not the
    # CWD — `repro report` may run from anywhere.
    lines.append(f"- code version: "
                 f"`{git_describe(Path(__file__).resolve().parent)}`")
    lines.append(f"- python: {platform.python_version()}")
    lines.append(f"- generated: {generated_at}")
    lines.append(f"- sweeps: {len(snapshot['sweeps'])}, "
                 f"cells: {total_cells}")
    if baseline is not None:
        lines.append(f"- baseline salt: `{baseline.get('salt', '?')}`")
        if baseline.get("salt") != store.salt:
            lines.append("- **salt differs from baseline: every delta "
                         "below is across an invalidation boundary**")

    if not snapshot["sweeps"]:
        lines.append("")
        lines.append("*(empty store: run `python -m repro sweep NAME "
                     "--store ...` first)*")

    for name, entry in snapshot["sweeps"].items():
        lines.append("")
        lines.append(f"## sweep `{name}`")
        lines.append("")
        if entry["description"]:
            lines.append(entry["description"])
            lines.append("")
        status = "complete" if entry["complete"] else \
            "**partial** (cell rows unavailable)"
        lines.append(f"- cells: {len(entry['cells'])} ({status})")
        lines.append(f"- recorded: {entry['recorded_at']}")
        if entry["salt"] and entry["salt"] != store.salt:
            lines.append(f"- **STALE: recorded under salt "
                         f"`{entry['salt']}`, current salt is "
                         f"`{store.salt}` — these results predate an "
                         "invalidation; re-run the sweep**")
        lines.append(f"- digest: `{_sweep_digest(entry['cells'])}`")
        missing = sum(1 for row in entry["rows"] if row is None)
        if missing:
            lines.append(f"- **{missing} cell row(s) unavailable** "
                         "(unfinished shard run, or a record pruned "
                         "by hand)")
        delta = _sweep_delta(entry, (baseline or {}).get(
            "sweeps", {}).get(name))
        if delta is not None:
            lines.append(f"- delta vs baseline: {len(delta['added'])} "
                         f"added, {len(delta['removed'])} removed, "
                         f"{len(delta['changed'])} changed")
            if delta["changed"]:
                lines.append("- **WARNING: cells changed without a "
                             "fingerprint change — nondeterminism or an "
                             "overdue salt bump:**")
                for fingerprint in delta["changed"]:
                    lines.append(f"  - `{fingerprint}`")
        lines.append("")
        rows = [row for row in entry["rows"] if row is not None]
        table = rows_to_table(f"sweep {name}", rows)
        lines.append("```text")
        lines.append(table.render())
        lines.append("```")
        if name == "leader-vs-quadratic":
            comparison = _leader_comparison_rows(rows)
            if comparison:
                lines.append("")
                lines.append("Words per decision versus n — the leader "
                             "family's happy path against quadratic BA, "
                             "with the Dolev-Reischuk counting attack's "
                             "Ω(f²) message floor at the same sizes:")
                lines.append("")
                lines.append("```text")
                lines.append(rows_to_table(
                    "words-vs-n vs the Dolev-Reischuk line",
                    comparison).render())
                lines.append("```")
        if name == "words-vs-actual-f":
            comparison = _adaptive_comparison_rows(rows)
            if comparison:
                lines.append("")
                lines.append("Total words versus the actual fault count "
                             "f* — the adaptive family's O((f*+1)n) "
                             "escalation curve against the non-adaptive "
                             "baselines at the same (n, f), over the "
                             "Dolev-Reischuk counting attack's Ω(f²) "
                             "message floor:")
                lines.append("")
                lines.append("```text")
                lines.append(rows_to_table(
                    "words-vs-actual-f vs the baselines",
                    comparison).render())
                lines.append("```")

    if baseline is not None:
        vanished = sorted(set(baseline.get("sweeps", {}))
                          - set(snapshot["sweeps"]))
        if vanished:
            lines.append("")
            lines.append("## Sweeps in baseline but not in this store")
            lines.append("")
            for name in vanished:
                lines.append(f"- `{name}`")

    document = "\n".join(lines) + "\n"
    if fmt == "html":
        document = _markdown_to_html(document, refresh_seconds=live_refresh)
    return document, snapshot


def _markdown_to_html(markdown: str,
                      refresh_seconds: Optional[int] = None) -> str:
    """Convert the restricted Markdown this module emits (headings,
    bullets, paragraphs, fenced text blocks, `code` spans) into a
    self-contained HTML page.  Not a general converter."""
    body: List[str] = []
    in_code = False
    in_list = False

    def close_list() -> None:
        nonlocal in_list
        if in_list:
            body.append("</ul>")
            in_list = False

    def inline(text: str) -> str:
        escaped = html_module.escape(text)
        for token, tag in (("**", "strong"), ("*", "em"), ("`", "code")):
            while escaped.count(token) >= 2:
                escaped = escaped.replace(token, f"<{tag}>", 1)
                escaped = escaped.replace(token, f"</{tag}>", 1)
        return escaped

    for line in markdown.splitlines():
        if line.startswith("```"):
            close_list()
            body.append("</pre>" if in_code else "<pre>")
            in_code = not in_code
            continue
        if in_code:
            body.append(html_module.escape(line))
            continue
        if line.startswith("## "):
            close_list()
            body.append(f"<h2>{inline(line[3:])}</h2>")
        elif line.startswith("# "):
            close_list()
            body.append(f"<h1>{inline(line[2:])}</h1>")
        elif line.startswith("- "):
            if not in_list:
                body.append("<ul>")
                in_list = True
            body.append(f"<li>{inline(line[2:])}</li>")
        elif line.startswith("  - ") and in_list:
            body.append(f"<li>&nbsp;&nbsp;{inline(line[4:])}</li>")
        elif not line.strip():
            close_list()
        else:
            close_list()
            body.append(f"<p>{inline(line)}</p>")
    close_list()
    refresh = ("" if refresh_seconds is None else
               f"<meta http-equiv=\"refresh\" "
               f"content=\"{int(refresh_seconds)}\">")
    return ("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            + refresh +
            "<title>Results book</title>"
            "<style>body{font-family:sans-serif;max-width:72em;"
            "margin:2em auto;padding:0 1em}pre{background:#f6f8fa;"
            "padding:1em;overflow-x:auto}</style></head><body>\n"
            + "\n".join(body) + "\n</body></html>\n")


def write_book(store: ExperimentStore,
               out_path=None,
               fmt: str = "md",
               baseline_path=None) -> Tuple[Path, Path]:
    """Render and write the book plus its JSON snapshot.

    ``out_path`` defaults to ``<store>/book.md`` (``book.html`` for
    ``fmt="html"``); the snapshot lands next to it with a ``.json``
    suffix.  Returns ``(book_path, snapshot_path)``.
    """
    baseline = None
    if baseline_path is not None:
        baseline = json.loads(Path(baseline_path).read_text(
            encoding="utf-8"))
        if (not isinstance(baseline, dict)
                or not isinstance(baseline.get("sweeps", {}), dict)
                or not all(isinstance(entry, dict) for entry
                           in baseline.get("sweeps", {}).values())):
            raise ValueError(
                f"baseline {baseline_path} is not a book snapshot "
                "(expected a JSON object with a 'sweeps' object)")
    if out_path is None:
        out_path = store.root / f"book.{'html' if fmt == 'html' else 'md'}"
    out_path = Path(out_path)
    document, snapshot = render_book(store, baseline=baseline, fmt=fmt)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(document, encoding="utf-8")
    snapshot_path = out_path.with_suffix(".json")
    if snapshot_path == out_path:
        # --out ending in .json would make the snapshot silently
        # overwrite the book itself.
        snapshot_path = out_path.with_suffix(".snapshot.json")
    snapshot_path.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return out_path, snapshot_path
