"""Declarative scenario-matrix layer: specs in, sweeps out.

Every workload in this repo is some cross-product of *protocol ×
adversary × input distribution × parameters (n, f, λ, seeds)*.  Before
this module each such grid was an imperative loop inside an experiment
function; here the grid is **data**:

- :class:`ScenarioSpec` names a protocol builder, an adversary factory,
  an input distribution, a parameter ``grid`` (cross-product axes) and
  ``fixed`` bindings, plus the seeds to repeat each cell over;
- :class:`SweepSpec` groups scenarios under one name;
- :func:`run_sweep` expands the cross-product into :class:`Cell`\\ s and
  executes each one — through :func:`~repro.harness.runner.run_trials`
  (``workers=N`` fans seeds over processes) for ordinary protocol cells,
  or through a registered *executor* for the lower-bound attack harnesses
  — aggregating per-cell O(1)-counter metrics into a
  :class:`SweepResult` that renders as a :class:`Table` and exports
  CSV/JSON artifacts.

Reserved binding names (resolved by the layer, everything else passes
through to the builder):

``n``            number of nodes (required by protocol executors)
``f``            corruption budget — an int, or a callable ``n -> f``
``f_fraction``   derive ``f = int(fraction * n)``
``lam``          build ``SecurityParameters(lam=...)`` for protocols
``epsilon``      resilience slack for the same ``SecurityParameters``
``adversary``    per-cell adversary key (usable as a grid axis)
``inputs``       per-cell input-distribution key (usable as a grid axis)
``network``      per-cell network conditions (usable as a grid axis): a
                 :data:`~repro.sim.conditions.NETWORKS` preset name or a
                 :class:`~repro.sim.conditions.NetworkConditions` value
``topology``     per-link latency topology layered onto the cell's
                 network conditions: a
                 :data:`~repro.sim.conditions.TOPOLOGIES` preset name or
                 a :class:`~repro.sim.conditions.LinkTopology` value
                 (nontrivial topologies require a ``network`` binding
                 with ``delta > 1``)

Determinism: cells expand in scenario order then row-major grid order,
trials aggregate in seed order for any worker count, and the shared
eligibility-lottery cache (:mod:`repro.eligibility.lottery_cache`)
memoizes coins that are already a pure function of ``(seed, node,
topic)`` — so a ``SweepResult``'s rows are identical with and without
``workers`` and with and without the cache.

Persistence: ``run_sweep(store=...)`` consults a content-addressed
:class:`~repro.harness.store.ExperimentStore` before executing each
cell, replaying recorded cells byte-identically and recording fresh
ones — which enables ``--resume`` after interruption, ``--shard K/M``
fan-out across invocations, and incremental grid growth (see
``docs/RESULTS.md``).
"""

from __future__ import annotations

import csv
import dataclasses
import io
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.adversaries import (
    AckEquivocationAdversary,
    ActualFaultsAdversary,
    AdaptiveSpeakerAdversary,
    CrashAdversary,
    DelayAdversary,
    LeaderKillerAdversary,
    StaticEquivocationAdversary,
    ViewSplitAdversary,
)
from repro.eligibility.lottery_cache import SharedLotteryCache, release_cache
from repro.errors import ConfigurationError
from repro.harness.runner import TrialStats, run_instance, run_trials
from repro.harness.tables import Table, rows_to_table, union_columns
from repro.sim.conditions import (
    NETWORKS,
    TOPOLOGIES,
    LinkTopology,
    NetworkConditions,
)
from repro.protocols import (
    build_adaptive_ba,
    build_broadcast_from_ba,
    build_dolev_strong,
    build_leader_ba,
    build_leader_chain,
    build_naive_broadcast,
    build_phase_king,
    build_phase_king_early_stop,
    build_phase_king_subquadratic,
    build_quadratic_ba,
    build_quadratic_ba_early_stop,
    build_round_eligibility,
    build_static_committee,
    build_subquadratic_ba,
)
from repro.types import SecurityParameters

# ---------------------------------------------------------------------------
# Registries: protocols, adversaries, input distributions.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProtocolEntry:
    """Registry metadata the binding layer needs about one builder."""

    builder: Callable[..., Any]
    #: "per-node" (builder takes ``inputs=[bit]*n``) or "sender"
    #: (builder takes ``sender_input=bit`` from the bindings).
    input_style: str = "per-node"
    #: Whether the builder accepts ``params=SecurityParameters(...)``
    #: (so ``lam``/``epsilon`` axes can be folded into one).
    accepts_params: bool = False
    #: Whether the builder accepts ``coin_cache=`` for the shared
    #: eligibility lottery (fmine mode only).
    shares_lottery: bool = False
    #: Whether the builder accepts ``mode="fmine"|"vrf"`` (the
    #: eligibility worlds) — consulted by the CLI so an explicit
    #: ``--mode`` is never silently dropped.
    takes_mode: bool = False
    #: GST-aware early-stopping variants: the builder accepts
    #: ``conditions=`` (to derive its trusted-round gate from the cell's
    #: network conditions) and the cell's artifact row gains a
    #: ``mean_rounds_saved`` column.
    early_stopping: bool = False
    #: The builder accepts ``conditions=`` without being an
    #: early-stopping variant (the leader family derives its view-timer
    #: budget and decide-announcement drain gate from Δ/GST).
    takes_conditions: bool = False
    #: View-based leader protocols: the cell's artifact row gains
    #: ``mean_views_executed`` / ``mean_view_changes`` columns derived
    #: from the per-trial settled view (see STORE_SALT in store.py —
    #: bumped when these columns landed).
    view_based: bool = False
    #: Adaptive protocols (words scale with the actual fault count):
    #: the cell's artifact row gains ``mean_words`` /
    #: ``mean_actual_faults`` / ``mean_escalations`` columns (the v4
    #: STORE_SALT bump).
    adaptive: bool = False


PROTOCOLS: Dict[str, ProtocolEntry] = {
    "subquadratic": ProtocolEntry(
        build_subquadratic_ba, accepts_params=True, shares_lottery=True,
        takes_mode=True),
    "quadratic": ProtocolEntry(build_quadratic_ba),
    "quadratic-early-stop": ProtocolEntry(
        build_quadratic_ba_early_stop, early_stopping=True),
    "leader-ba": ProtocolEntry(
        build_leader_ba, takes_conditions=True, view_based=True),
    "leader-chain": ProtocolEntry(
        build_leader_chain, takes_conditions=True, view_based=True),
    "adaptive-ba": ProtocolEntry(
        build_adaptive_ba, takes_conditions=True, adaptive=True),
    "phase-king": ProtocolEntry(build_phase_king),
    "phase-king-early-stop": ProtocolEntry(
        build_phase_king_early_stop, early_stopping=True),
    "phase-king-subquadratic": ProtocolEntry(
        build_phase_king_subquadratic, accepts_params=True,
        shares_lottery=True, takes_mode=True),
    "static-committee": ProtocolEntry(build_static_committee),
    "round-eligibility": ProtocolEntry(
        build_round_eligibility, accepts_params=True, takes_mode=True),
    "dolev-strong": ProtocolEntry(build_dolev_strong, input_style="sender"),
    "naive-broadcast": ProtocolEntry(
        build_naive_broadcast, input_style="sender"),
    "broadcast-from-ba": ProtocolEntry(
        build_broadcast_from_ba, input_style="sender"),
}


def _no_adversary(instance, **kwargs):
    return None


def _crash_adversary(instance, **kwargs):
    return CrashAdversary(**kwargs)


def _delay_adversary(instance, **kwargs):
    return DelayAdversary(**kwargs)


def _actual_faults_adversary(instance, **kwargs):
    return ActualFaultsAdversary(**kwargs)


ADVERSARIES: Dict[str, Callable[..., Any]] = {
    "none": _no_adversary,
    "actual-faults": _actual_faults_adversary,
    "crash": _crash_adversary,
    "delay": _delay_adversary,
    "equivocate": StaticEquivocationAdversary,
    "ack-equivocate": AckEquivocationAdversary,
    "speaker": AdaptiveSpeakerAdversary,
    "leader-killer": LeaderKillerAdversary,
    "view-split": ViewSplitAdversary,
}


def inputs_zeros(n: int) -> List[int]:
    return [0] * n


def inputs_ones(n: int) -> List[int]:
    return [1] * n


def inputs_mixed(n: int) -> List[int]:
    return [i % 2 for i in range(n)]


INPUTS: Dict[str, Callable[[int], List[int]]] = {
    "zeros": inputs_zeros,
    "ones": inputs_ones,
    "mixed": inputs_mixed,
}


def f_half_minus_one(n: int) -> int:
    """The maximal honest-majority budget ``f = (n - 1) // 2``, for use
    as a callable ``f`` binding."""
    return (n - 1) // 2


def f_third_minus_one(n: int) -> int:
    """The maximal partial-synchrony budget ``f = (n - 1) // 3`` (so
    ``n > 3f``), for use as a callable ``f`` binding with the
    leader-based family."""
    return (n - 1) // 3


@dataclass(frozen=True)
class AdversaryFactorySpec:
    """A picklable adversary factory: registry key + keyword arguments.

    ``run_trials(workers=N)`` pickles the factory to worker processes, so
    it must be a module-level object rather than a closure.
    """

    name: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __call__(self, instance):
        return ADVERSARIES[self.name](instance, **dict(self.kwargs))


# ---------------------------------------------------------------------------
# Specs and cells.
# ---------------------------------------------------------------------------

#: Bindings resolved by the layer rather than passed to the builder.
RESERVED_BINDINGS = frozenset(
    {"n", "f", "f_fraction", "lam", "epsilon", "adversary", "inputs",
     "network", "topology"})


@dataclass(frozen=True)
class ScenarioSpec:
    """One protocol × adversary × inputs family over a parameter grid.

    ``grid`` axes cross-multiply in insertion order (first axis is the
    outermost loop); ``fixed`` bindings apply to every cell and are
    overridden by grid axes of the same name.  Bindings not in
    :data:`RESERVED_BINDINGS` pass through to the protocol builder
    verbatim (``epochs``, ``mode``, ``max_iterations``, ``sender_input``,
    a pre-built ``params`` object, ...).  A ``ba_builder`` binding given
    as a string resolves through :data:`PROTOCOLS` (for the
    broadcast-from-BA reduction).
    """

    name: str
    protocol: Optional[str] = None
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    fixed: Mapping[str, Any] = field(default_factory=dict)
    adversary: Optional[str] = None
    adversary_kwargs: Mapping[str, Any] = field(default_factory=dict)
    inputs: Optional[str] = None
    seeds: Sequence[Any] = (0, 1, 2)
    executor: str = "trials"

    def cells(self) -> List["Cell"]:
        """Expand the grid cross-product into bound cells."""
        if self.executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {self.executor!r} "
                f"(have {sorted(EXECUTORS)})")
        axes = list(self.grid.items())
        for axis, values in axes:
            if not isinstance(values, Sequence) or isinstance(values, str):
                raise ConfigurationError(
                    f"grid axis {axis!r} must be a sequence of values")
        points = itertools.product(*(values for _, values in axes)) \
            if axes else [()]
        cells = []
        for point in points:
            bindings = dict(self.fixed)
            bindings.update(zip((axis for axis, _ in axes), point))
            cells.append(_bind_cell(self, bindings))
        return cells


@dataclass(frozen=True)
class SweepSpec:
    """A named collection of scenarios executed as one sweep."""

    name: str
    scenarios: Tuple[ScenarioSpec, ...]
    description: str = ""

    def expand(self) -> List["Cell"]:
        cells: List[Cell] = []
        for scenario in self.scenarios:
            cells.extend(scenario.cells())
        return cells


@dataclass(frozen=True)
class Cell:
    """One fully-bound grid point, ready to execute."""

    scenario: str
    executor: str
    protocol: Optional[str]
    adversary: Optional[str]
    adversary_kwargs: Tuple[Tuple[str, Any], ...]
    inputs: Optional[str]
    #: Resolved network conditions (None = perfect synchrony).
    network: Optional[NetworkConditions]
    n: Optional[int]
    f: Optional[int]
    seeds: Tuple[Any, ...]
    #: Keyword arguments handed to the builder / attack runner (without
    #: ``f`` and ``seed``/``seeds``, which the executor supplies).
    kwargs: Tuple[Tuple[str, Any], ...]
    #: The resolved reserved bindings, kept for labels and artifact rows.
    bindings: Tuple[Tuple[str, Any], ...]

    def label(self) -> str:
        parts = [self.scenario]
        parts.extend(f"{key}={value}" for key, value in self.bindings
                     if key not in ("adversary", "inputs"))
        if self.adversary:
            parts.append(f"adversary={self.adversary}")
        return " ".join(parts)

    def builder_kwargs(self) -> Dict[str, Any]:
        return dict(self.kwargs)


def _resolve_f(raw: Mapping[str, Any], n: Optional[int]) -> Optional[int]:
    f = raw.get("f")
    if callable(f):
        if n is None:
            raise ConfigurationError("callable f requires an n binding")
        return int(f(n))
    if f is not None:
        return int(f)
    fraction = raw.get("f_fraction")
    if fraction is not None:
        if n is None:
            raise ConfigurationError("f_fraction requires an n binding")
        return int(fraction * n)
    return None


def _bind_cell(spec: ScenarioSpec, raw: Dict[str, Any]) -> Cell:
    """Resolve one grid point's reserved bindings into a :class:`Cell`."""
    executor = EXECUTORS[spec.executor]
    entry: Optional[ProtocolEntry] = None
    if spec.protocol is not None:
        if spec.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {spec.protocol!r} "
                f"(have {sorted(PROTOCOLS)})")
        entry = PROTOCOLS[spec.protocol]
    elif executor.needs_protocol:
        raise ConfigurationError(
            f"scenario {spec.name!r}: executor {spec.executor!r} "
            "requires a protocol")

    adversary = raw.pop("adversary", spec.adversary)
    if adversary is not None and adversary not in ADVERSARIES:
        raise ConfigurationError(
            f"unknown adversary {adversary!r} (have {sorted(ADVERSARIES)})")
    # ``adversary_<kw>``-prefixed bindings are grid-able adversary
    # keyword arguments: ``adversary_actual`` on a grid axis becomes
    # ``actual=...`` to the cell's adversary factory (over any value in
    # ``spec.adversary_kwargs``), and the prefixed name stays in the
    # artifact row so the axis is visible — e.g. the adaptive family's
    # words-vs-actual-f sweep dials f* through ``adversary_actual``.
    adversary_kwargs = dict(spec.adversary_kwargs)
    adversary_axes: List[Tuple[str, Any]] = []
    for key in [key for key in raw if key.startswith("adversary_")]:
        value = raw.pop(key)
        adversary_kwargs[key[len("adversary_"):]] = value
        adversary_axes.append((key, value))
    if adversary_axes and adversary is None:
        raise ConfigurationError(
            f"scenario {spec.name!r}: adversary_-prefixed bindings "
            f"({sorted(key for key, _ in adversary_axes)}) require an "
            "adversary binding to apply to")
    inputs_key = raw.pop("inputs", spec.inputs)
    if inputs_key is not None and inputs_key not in INPUTS:
        raise ConfigurationError(
            f"unknown input distribution {inputs_key!r} "
            f"(have {sorted(INPUTS)})")
    network_binding = raw.pop("network", None)
    network: Optional[NetworkConditions] = None
    network_label: Optional[str] = None
    if isinstance(network_binding, str):
        if network_binding not in NETWORKS:
            raise ConfigurationError(
                f"unknown network conditions {network_binding!r} "
                f"(have {sorted(NETWORKS)})")
        network = NETWORKS[network_binding]
        network_label = network_binding
    elif isinstance(network_binding, NetworkConditions):
        network = network_binding
        network_label = network.describe()
    elif network_binding is not None:
        raise ConfigurationError(
            f"network binding must be a NETWORKS name or a "
            f"NetworkConditions, got {network_binding!r}")
    topology_binding = raw.pop("topology", None)
    topology: Optional[LinkTopology] = None
    topology_label: Optional[str] = None
    if isinstance(topology_binding, str):
        if topology_binding not in TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology {topology_binding!r} "
                f"(have {sorted(TOPOLOGIES)})")
        topology = TOPOLOGIES[topology_binding]
        topology_label = topology_binding
    elif isinstance(topology_binding, LinkTopology):
        topology = topology_binding
        topology_label = topology.describe()
    elif topology_binding is not None:
        raise ConfigurationError(
            f"topology binding must be a TOPOLOGIES name or a "
            f"LinkTopology, got {topology_binding!r}")
    if topology is not None:
        # The binding wins over any topology baked into an inline
        # NetworkConditions value — a 'uniform' axis point *strips* a
        # baked-in topology — so one conditions object can back a whole
        # topology axis with an honest uniform baseline.
        if network is None:
            if not topology.is_trivial:
                raise ConfigurationError(
                    f"scenario {spec.name!r}: a nontrivial topology "
                    "shapes latency within the Δ bound, so it needs a "
                    "network binding with delta > 1 (e.g. 'lan' or "
                    "'wan')")
        elif topology.is_trivial:
            if network.topology is not None:
                network = dataclasses.replace(network, topology=None)
        elif network.delta > 1:
            network = dataclasses.replace(network, topology=topology)
        # else delta == 1: every surcharge would clamp away, so the
        # cell stays lock-step — the Δ-clamp semantics, and the same
        # exemption --network perfect enjoys, so a forced --topology
        # can span grids that include perfect cells.
    if network is not None and network.is_perfect:
        network = None  # the engine's fast path; keep the label for rows
    if network is not None and not executor.supports_network:
        raise ConfigurationError(
            f"scenario {spec.name!r}: executor {spec.executor!r} does not "
            "support network conditions")

    n = raw.get("n")
    f = _resolve_f(raw, n)
    if executor.needs_n and n is None:
        raise ConfigurationError(
            f"scenario {spec.name!r}: executor {spec.executor!r} "
            "requires an n binding")
    if executor.needs_f and f is None:
        raise ConfigurationError(
            f"scenario {spec.name!r}: executor {spec.executor!r} "
            "requires an f or f_fraction binding")
    if executor.single_seed and len(spec.seeds) != 1:
        raise ConfigurationError(
            f"scenario {spec.name!r}: executor {spec.executor!r} runs "
            f"exactly one seed, got {len(spec.seeds)}")

    # Attack executors have their own ``epsilon`` (a message-budget
    # factor, not the resilience slack), so lam/epsilon fold into
    # SecurityParameters only for the protocol executors.
    reserved = (RESERVED_BINDINGS if executor.folds_params
                else RESERVED_BINDINGS - {"lam", "epsilon"})
    kwargs = {key: value for key, value in raw.items()
              if key not in reserved}
    if isinstance(kwargs.get("ba_builder"), str):
        kwargs["ba_builder"] = PROTOCOLS[kwargs["ba_builder"]].builder
    if n is not None:
        kwargs["n"] = n
    # Fold lam/epsilon axes into SecurityParameters for builders that
    # take them.  Refuse combinations that would silently drop a binding
    # the artifact rows would still report (a pre-built ``params`` with
    # lam/epsilon alongside, lam on a protocol without params, epsilon
    # with nothing to fold it into).
    lam = raw.get("lam")
    epsilon = raw.get("epsilon")
    if executor.folds_params:
        if "params" in kwargs and (lam is not None or epsilon is not None):
            raise ConfigurationError(
                f"scenario {spec.name!r}: both a pre-built params binding "
                "and lam/epsilon given — the latter would be ignored")
        if (lam is not None and entry is not None
                and not entry.accepts_params):
            raise ConfigurationError(
                f"scenario {spec.name!r}: protocol {spec.protocol!r} does "
                "not accept params; the lam binding would be ignored")
        if lam is None and epsilon is not None:
            raise ConfigurationError(
                f"scenario {spec.name!r}: epsilon requires a lam binding "
                "to fold into SecurityParameters")
        if lam is not None and (entry is None or entry.accepts_params):
            params_kwargs: Dict[str, Any] = {"lam": lam}
            if epsilon is not None:
                params_kwargs["epsilon"] = epsilon
            kwargs["params"] = SecurityParameters(**params_kwargs)
    if entry is not None and entry.input_style == "per-node":
        if "inputs" not in kwargs:
            kwargs["inputs"] = INPUTS[inputs_key or "mixed"](n)

    seen = set()
    bindings: List[Tuple[str, Any]] = []

    def _record(key: str, value: Any) -> None:
        if key not in seen:
            seen.add(key)
            bindings.append((key, value))

    for key in ("n", "f", "f_fraction", "lam", "epsilon"):
        if key == "f":
            if f is not None:
                _record("f", f)
        elif key in raw and not callable(raw[key]):
            _record(key, raw[key])
    for key, value in raw.items():
        if key in RESERVED_BINDINGS or key in ("params", "ba_builder"):
            continue
        _record(key, value)
    if adversary is not None:
        _record("adversary", adversary)
    for key, value in adversary_axes:
        _record(key, value)
    if inputs_key is not None:
        _record("inputs", inputs_key)
    if network_label is not None:
        _record("network", network_label)
    if topology_label is not None:
        _record("topology", topology_label)

    return Cell(
        scenario=spec.name,
        executor=spec.executor,
        protocol=spec.protocol,
        adversary=adversary,
        adversary_kwargs=tuple(sorted(adversary_kwargs.items())),
        inputs=inputs_key,
        network=network,
        n=n,
        f=f,
        seeds=tuple(spec.seeds),
        kwargs=tuple(kwargs.items()),
        bindings=tuple(bindings),
    )


# ---------------------------------------------------------------------------
# Executors.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Executor:
    """How a cell runs: the callable plus its binding requirements."""

    run: Callable[..., Tuple[Any, Dict[str, Any]]]
    needs_protocol: bool = True
    needs_n: bool = True
    needs_f: bool = True
    #: Whether ``lam``/``epsilon`` bindings fold into SecurityParameters
    #: (protocol executors) or pass through verbatim (attack executors,
    #: whose ``epsilon`` is the lower-bound message-budget factor).
    folds_params: bool = True
    #: Executors that run exactly one seed; multi-seed specs are
    #: rejected rather than silently truncated to ``seeds[0]``.
    single_seed: bool = False
    #: Whether the executor honors a ``network`` binding (the protocol
    #: executors and the attack harnesses do; executors that never run a
    #: protocol — ``hypothetical``, ``committee-census`` — reject one
    #: rather than silently ignoring it).
    supports_network: bool = False


def _is_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


def _stats_metrics(stats: TrialStats,
                   early_stopping: bool = False,
                   view_based: bool = False,
                   adaptive: bool = False) -> Dict[str, Any]:
    metrics = {
        "trials": stats.trials,
        "consistency_rate": stats.consistency_rate,
        "validity_rate": stats.validity_rate,
        "termination_rate": stats.termination_rate,
        "violation_rate": stats.violation_rate,
        "mean_rounds": stats.mean_rounds,
        "mean_multicasts": stats.mean_multicasts,
        "mean_multicast_bits": stats.mean_multicast_bits,
        "mean_corruptions": stats.mean_corruptions,
        "max_message_bits": stats.max_message_bits,
    }
    # Network-axis columns only for conditioned cells, so sweeps that
    # never leave perfect synchrony keep byte-identical artifacts.
    if stats.has_network_stats:
        metrics["mean_delivery_latency"] = stats.mean_delivery_latency
        metrics["max_in_flight"] = stats.max_in_flight
        metrics["dropped_copies"] = stats.dropped_copies
        # Scheduler accounting.  Both columns are engine-invariant (the
        # lock-step synchronizer executes the idle ticks the event
        # engine skips, and counts the same number), so artifacts stay
        # byte-identical across schedulers — the CI event-engine-smoke
        # job cmp's them directly.
        metrics["skipped_ticks"] = stats.skipped_ticks
        metrics["events_processed"] = stats.events_processed
    # Likewise the rounds-saved column appears only for the early-stop
    # protocol variants, whose whole point it measures.
    if early_stopping:
        metrics["mean_rounds_saved"] = stats.mean_rounds_saved
    # And the view-accounting columns only for the leader family (these
    # additions are what bumped STORE_SALT to v3).
    if view_based:
        from repro.protocols.leader_ba import decision_view_of
        views = [decision_view_of(result) for result in stats.results]
        trials = len(views)
        metrics["mean_views_executed"] = (
            sum(views) / trials if trials else 0.0)
        metrics["mean_view_changes"] = (
            sum(view - 1 for view in views) / trials if trials else 0.0)
    # And the words/fault-count accounting only for the adaptive family,
    # whose claim is words = O((f* + 1) n) (the v4 STORE_SALT bump).
    # ``mean_words`` is the classical word count (Definition 6) — the
    # fast path is built from unicasts the multicast columns do not see.
    if adaptive:
        from repro.protocols.adaptive_ba import (
            actual_faults_of,
            escalations_of,
            words_of,
        )
        results = stats.results
        trials = len(results)
        metrics["mean_words"] = (
            sum(words_of(result) for result in results) / trials
            if trials else 0.0)
        metrics["mean_actual_faults"] = (
            sum(actual_faults_of(result) for result in results) / trials
            if trials else 0.0)
        metrics["mean_escalations"] = (
            sum(escalations_of(result) for result in results) / trials
            if trials else 0.0)
    return metrics


def _report_metrics(report: Any) -> Dict[str, Any]:
    """Scalar fields of an attack-report dataclass, for artifact rows."""
    if dataclasses.is_dataclass(report):
        return {field.name: getattr(report, field.name)
                for field in dataclasses.fields(report)
                if _is_scalar(getattr(report, field.name))}
    return {}


def _cell_trial_kwargs(cell: Cell,
                       coin_cache: Optional[SharedLotteryCache],
                       ) -> Dict[str, Any]:
    entry = PROTOCOLS[cell.protocol]
    kwargs = cell.builder_kwargs()
    if (coin_cache is not None and entry.shares_lottery
            and kwargs.get("mode", "fmine") == "fmine"
            and "eligibility" not in kwargs):
        kwargs["coin_cache"] = coin_cache
    return kwargs


def _adversary_factory(cell: Cell) -> Optional[AdversaryFactorySpec]:
    if cell.adversary is None:
        return None
    return AdversaryFactorySpec(cell.adversary, cell.adversary_kwargs)


def _execute_trials(cell: Cell, workers: int,
                    coin_cache: Optional[SharedLotteryCache],
                    pool=None) -> Tuple[TrialStats, Dict[str, Any]]:
    """The default executor: :func:`run_trials` over the cell's seeds."""
    entry = PROTOCOLS[cell.protocol]
    stats = run_trials(
        entry.builder,
        f=cell.f,
        seeds=cell.seeds,
        adversary_factory=_adversary_factory(cell),
        workers=workers,
        conditions=cell.network,
        builder_takes_conditions=entry.early_stopping or entry.takes_conditions,
        pool=pool,
        **_cell_trial_kwargs(cell, coin_cache),
    )
    return stats, _stats_metrics(stats, early_stopping=entry.early_stopping,
                                 view_based=entry.view_based,
                                 adaptive=entry.adaptive)


def _execute_per_seed(cell: Cell, workers: int,
                      coin_cache: Optional[SharedLotteryCache],
                      pool=None,
                      ) -> Tuple[List[Tuple[Any, Any]], Dict[str, Any]]:
    """Sequential per-seed runner that keeps the adversary objects.

    Used when the table needs adversary-side statistics (forged ACK
    counts, corruption schedules) that :class:`TrialStats` does not
    carry; always sequential so the adversary objects stay in-process.
    """
    entry = PROTOCOLS[cell.protocol]
    kwargs = _cell_trial_kwargs(cell, coin_cache)
    if entry.early_stopping or entry.takes_conditions:
        kwargs["conditions"] = cell.network
    factory = _adversary_factory(cell)
    records: List[Tuple[Any, Any]] = []
    stats = TrialStats()
    for seed in cell.seeds:
        instance = entry.builder(f=cell.f, seed=seed, **kwargs)
        adversary = factory(instance) if factory is not None else None
        result = run_instance(instance, cell.f, adversary, seed=seed,
                              conditions=cell.network)
        records.append((result, adversary))
        stats.add(result)
    return records, _stats_metrics(stats, early_stopping=entry.early_stopping,
                                   view_based=entry.view_based,
                                   adaptive=entry.adaptive)


def _attack_kwargs(cell: Cell) -> Dict[str, Any]:
    kwargs = cell.builder_kwargs()
    kwargs.pop("n", None)  # passed positionally by the attack runners
    return kwargs


def _execute_theorem4(cell: Cell, workers: int,
                      coin_cache: Optional[SharedLotteryCache],
                      pool=None):
    from repro.lowerbounds import run_theorem4_attack
    report = run_theorem4_attack(
        PROTOCOLS[cell.protocol].builder, n=cell.n, f=cell.f,
        seeds=cell.seeds, conditions=cell.network, **_attack_kwargs(cell))
    return report, _report_metrics(report)


def _execute_theorem4_census(cell: Cell, workers: int,
                             coin_cache: Optional[SharedLotteryCache],
                             pool=None):
    from repro.lowerbounds.theorem4 import run_theorem4_census
    census = run_theorem4_census(
        PROTOCOLS[cell.protocol].builder, n=cell.n, f=cell.f,
        seeds=cell.seeds, conditions=cell.network, **_attack_kwargs(cell))
    return census, _report_metrics(census)


def _execute_dolev_reischuk(cell: Cell, workers: int,
                            coin_cache: Optional[SharedLotteryCache],
                            pool=None):
    from repro.lowerbounds import run_dolev_reischuk_attack
    report = run_dolev_reischuk_attack(
        PROTOCOLS[cell.protocol].builder, n=cell.n, f=cell.f,
        seed=cell.seeds[0], conditions=cell.network, **_attack_kwargs(cell))
    return report, _report_metrics(report)


def _execute_hypothetical(cell: Cell, workers: int,
                          coin_cache: Optional[SharedLotteryCache],
                          pool=None):
    from repro.lowerbounds import run_hypothetical_experiment
    report = run_hypothetical_experiment(
        seed=cell.seeds[0], **cell.builder_kwargs())
    return report, _report_metrics(report)


def _execute_committee_census(cell: Cell, workers: int,
                              coin_cache: Optional[SharedLotteryCache],
                              pool=None):
    """Monte-Carlo committee statistics (Lemmas 10–11).

    Samples the eligibility lottery itself — no protocol execution — one
    fresh :class:`FMineEligibility` per seed, recording the committee
    size and its corrupt membership for the cell's ``topic``.
    """
    from repro.eligibility import DifficultySchedule, FMineEligibility
    kwargs = cell.builder_kwargs()
    params = kwargs["params"]
    topic = tuple(kwargs.get("topic", ("Vote", 1, 1)))
    schedule = DifficultySchedule.for_parameters(params, cell.n)
    threshold = kwargs.get("threshold", (params.lam + 1) // 2)
    samples: List[Tuple[int, int]] = []
    corrupt_hits = 0
    honest_misses = 0
    for seed in cell.seeds:
        # Deliberately no coin_cache: every census sample has a unique
        # seed, so the sweep-wide cache could never hit — it would only
        # accumulate n × samples dead entries.  Within one sample the
        # per-instance FMine memo already deduplicates.
        source = FMineEligibility(cell.n, schedule, seed=seed)
        eligible = [node for node in range(cell.n)
                    if source.capability_for(node).try_mine(topic) is not None]
        corrupt = sum(1 for node in eligible if node < cell.f)
        samples.append((len(eligible), corrupt))
        corrupt_hits += corrupt >= threshold
        honest_misses += (len(eligible) - corrupt) < threshold
    count = len(samples)
    metrics = {
        "samples": count,
        "mean_committee_size":
            sum(size for size, _ in samples) / count if count else 0.0,
        "corrupt_quorum_rate": corrupt_hits / count if count else 0.0,
        "honest_miss_rate": honest_misses / count if count else 0.0,
        "threshold": threshold,
    }
    return samples, metrics


EXECUTORS: Dict[str, Executor] = {
    "trials": Executor(_execute_trials, supports_network=True),
    "per-seed": Executor(_execute_per_seed, supports_network=True),
    # The attack harnesses run their adversaries through run_instance,
    # which takes conditions — so partition/latency *studies* of the
    # lower-bound attacks are a network binding away (the proofs'
    # view-identity arguments assume lock-step; under conditions the
    # reports are empirical, see docs/NETWORK.md).
    "theorem4": Executor(_execute_theorem4, folds_params=False,
                         supports_network=True),
    "theorem4-census": Executor(_execute_theorem4_census,
                                folds_params=False, supports_network=True),
    "dolev-reischuk": Executor(_execute_dolev_reischuk, folds_params=False,
                               single_seed=True, supports_network=True),
    "hypothetical": Executor(
        _execute_hypothetical, needs_protocol=False, needs_f=False,
        single_seed=True),
    "committee-census": Executor(_execute_committee_census,
                                 needs_protocol=False),
}


# ---------------------------------------------------------------------------
# Results and artifacts.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CachedCellPayload:
    """Placeholder payload for a cell replayed from an experiment store.

    Store records keep metrics only — transcripts, per-trial results,
    and :class:`TrialStats` are never persisted — so a replayed cell
    refuses payload access the same way a metrics-only transcript
    (``transcript_retained=False``) refuses replay and invariant checks:
    loudly, instead of handing back fabricated data.
    """

    fingerprint: str


@dataclass
class CellResult:
    """One executed cell: the raw payload plus its flat metrics row.

    ``payload`` keeps the executor's native result (a
    :class:`TrialStats`, an attack report, per-seed records) so table
    code can reach per-trial data; ``metrics`` holds only scalars and is
    what artifacts serialize.  Cells replayed from an experiment store
    carry a :class:`CachedCellPayload` instead (``cached=True``) and
    refuse payload access.
    """

    cell: Cell
    payload: Any
    metrics: Dict[str, Any]
    #: Store fingerprint of the cell, when a store was consulted.
    fingerprint: Optional[str] = None
    #: Whether the metrics were replayed from a store rather than
    #: computed by this invocation.
    cached: bool = False

    @property
    def stats(self) -> TrialStats:
        if isinstance(self.payload, CachedCellPayload):
            raise TypeError(
                f"cell {self.cell.label()!r} was replayed from the "
                f"experiment store (fingerprint "
                f"{self.payload.fingerprint[:12]}); stored records keep "
                "metrics only — re-run without the store, or bump the "
                "store salt, for TrialStats/transcript access")
        if not isinstance(self.payload, TrialStats):
            raise TypeError(
                f"cell {self.cell.label()!r} ran executor "
                f"{self.cell.executor!r}, which has no TrialStats payload")
        return self.payload

    def row(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "scenario": self.cell.scenario,
            "protocol": self.cell.protocol,
            "executor": self.cell.executor,
        }
        for key, value in self.cell.bindings:
            if _is_scalar(value):
                row[key] = value
        row["seeds"] = len(self.cell.seeds)
        for key, value in self.metrics.items():
            if _is_scalar(value):
                row[key] = value
        return row


def sweep_json_text(name: str, rows: List[Dict[str, Any]],
                    lottery: Optional[Dict[str, Any]] = None) -> str:
    """The canonical JSON artifact text for one sweep's rows.

    Single-sourced so every producer — :meth:`SweepResult.to_json` after
    a live run, and the experiment service serving the same sweep out of
    a store — emits byte-identical artifacts for the same rows.
    """
    payload = {"sweep": name, "rows": rows, "lottery": lottery}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def sweep_csv_text(rows: List[Dict[str, Any]]) -> str:
    """The canonical CSV artifact text for one sweep's rows (column
    order via :func:`union_columns`, shared with the table renderers)."""
    columns = union_columns(rows)
    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


@dataclass
class SweepResult:
    """All cells of one sweep, with table rendering and artifact export."""

    name: str
    cells: List[CellResult]
    lottery: Optional[Dict[str, Any]] = None
    #: Replay/compute accounting when a store or shard was in play:
    #: ``{"replayed": R, "computed": C, "skipped": S, "salt": ...,
    #: "shard": "K/M" | None}``.  Not serialized into artifacts (a warm
    #: replay must emit byte-identical CSV/JSON).
    store_stats: Optional[Dict[str, Any]] = None

    def rows(self) -> List[Dict[str, Any]]:
        """Flat, JSON-safe rows — one per cell, deterministic order."""
        return [cell.row() for cell in self.cells]

    def scenario(self, name: str) -> List[CellResult]:
        """The executed cells of one scenario, in grid order."""
        return [cell for cell in self.cells if cell.cell.scenario == name]

    def to_table(self, title: Optional[str] = None) -> Table:
        """Render the rows as an aligned table (union of row columns)."""
        return rows_to_table(title or f"sweep {self.name}", self.rows())

    def to_json(self, path) -> Path:
        path = Path(path)
        path.write_text(sweep_json_text(self.name, self.rows(),
                                        self.lottery))
        return path

    def to_csv(self, path) -> Path:
        path = Path(path)
        with path.open("w", newline="") as handle:
            handle.write(sweep_csv_text(self.rows()))
        return path

    @staticmethod
    def load_rows(path) -> List[Dict[str, Any]]:
        """Rows back out of a :meth:`to_json` artifact (round-trip)."""
        payload = json.loads(Path(path).read_text())
        return payload["rows"]


_SWEEP_IDS = itertools.count()


def execute_or_replay(cell: Cell, store=None, sweep_name: str = "",
                      share_lottery: bool = True, workers: int = 1,
                      coin_cache: Optional[SharedLotteryCache] = None,
                      pool=None) -> CellResult:
    """Execute one bound cell, replaying it from ``store`` if recorded.

    The single cell-granularity entry point shared by :func:`run_sweep`
    and the experiment service's worker pool: consult the store (when
    given) for the cell's fingerprint, replay a recorded cell as a
    :class:`CachedCellPayload` result carrying the stored metrics, or
    execute it and record the fresh result durably before returning.
    Cells are independent — each one's results are a pure function of
    its bindings and seeds — so callers may execute cells in any order
    or concurrently against one concurrency-safe store backend.
    """
    fingerprint = None
    if store is not None:
        fingerprint = store.fingerprint(cell, share_lottery=share_lottery)
        record = store.load_record(fingerprint)
        if record is not None:
            # Replay: the stored metrics dict round-trips JSON exactly
            # (scalars only, insertion order kept), so rows/tables/
            # artifacts are byte-identical to the recorded fresh
            # execution.  The row is recomposed from the *live* cell,
            # so display metadata (scenario names, binding labels —
            # outside the fingerprint) always tracks the current spec.
            return CellResult(
                cell=cell,
                payload=CachedCellPayload(fingerprint=fingerprint),
                metrics=dict(record["metrics"]),
                fingerprint=fingerprint,
                cached=True)
    payload, metrics = EXECUTORS[cell.executor].run(
        cell, workers, coin_cache, pool=pool)
    result = CellResult(cell=cell, payload=payload,
                        metrics=metrics, fingerprint=fingerprint)
    if store is not None:
        store.save_result(fingerprint, sweep_name, result,
                          share_lottery=share_lottery)
    return result


def run_sweep(sweep: SweepSpec, workers: int = 1,
              share_lottery: bool = True,
              store=None,
              shard: Optional[Tuple[int, int]] = None,
              on_cell: Optional[Callable[[Dict[str, Any]], None]] = None,
              ) -> SweepResult:
    """Expand and execute every cell of ``sweep``.

    ``workers > 1`` fans each cell's seeds across processes via
    :func:`run_trials`; cells themselves run in order, so results are
    deterministic for any worker count.  ``share_lottery`` installs a
    per-sweep :class:`SharedLotteryCache` so ideal-world eligibility
    coins are computed once per ``(seed, node, topic)`` across all cells
    that share them (identical coins either way — the cache memoizes a
    pure function).

    ``store`` (a :class:`~repro.harness.store.ExperimentStore`) makes
    the sweep incremental: each cell's fingerprint is looked up before
    execution, recorded cells are replayed byte-identically (as
    :class:`CachedCellPayload` cells carrying the stored metrics), and
    freshly computed cells are recorded.  Store-backed results report
    no lottery counters — replayed cells draw no coins, so the counters
    would vary between cold and warm runs while the artifacts must not.

    ``shard=(k, m)`` (1-based) restricts *computation* to cells whose
    expansion index ``i`` satisfies ``i % m == k - 1``; other cells are
    still replayed when the store has them, and silently skipped (and
    counted in ``store_stats["skipped"]``) when it does not — so M
    shard invocations against one shared store union into the full
    sweep, and the last one returns (and records) the complete result.

    ``on_cell`` is a per-cell progress callback, invoked after each
    cell settles with a dict event: ``{"index", "total", "status"
    ("computed" | "replayed" | "skipped"), "scenario", "label",
    "fingerprint" (None without a store)}``.  The experiment service
    streams these to polling clients; exceptions propagate (a callback
    that raises aborts the sweep).
    """
    if shard is not None:
        shard_index, shard_count = shard
        if shard_count < 1 or not 1 <= shard_index <= shard_count:
            raise ConfigurationError(
                f"shard (k, m) needs 1 <= k <= m, got {shard!r}")
    cache: Optional[SharedLotteryCache] = None
    if share_lottery:
        cache = SharedLotteryCache(
            token=f"sweep-{sweep.name}-{next(_SWEEP_IDS)}")
    pool = None
    if workers > 1:
        # One pool for the whole sweep: worker processes persist across
        # cells, so the per-worker lottery caches (rebound from the
        # pickled token) accumulate coins cell over cell instead of
        # dying with a per-cell pool.
        from concurrent.futures import ProcessPoolExecutor
        pool = ProcessPoolExecutor(max_workers=workers)
    try:
        results = []
        all_fingerprints: List[str] = []
        all_rows: List[Optional[Dict[str, Any]]] = []
        replayed = computed = skipped = 0
        cells = sweep.expand()

        def _progress(index: int, cell: Cell, status: str,
                      fingerprint: Optional[str]) -> None:
            if on_cell is not None:
                on_cell({"index": index, "total": len(cells),
                         "status": status, "scenario": cell.scenario,
                         "label": cell.label(),
                         "fingerprint": fingerprint})

        for index, cell in enumerate(cells):
            fingerprint = None
            if store is not None:
                fingerprint = store.fingerprint(
                    cell, share_lottery=share_lottery)
                all_fingerprints.append(fingerprint)
            if (shard is not None
                    and index % shard_count != shard_index - 1):
                # Out-of-shard cells still replay when recorded (the
                # helper below only executes on a store miss) — but a
                # miss is *skipped*, never computed here.
                result = None
                if store is not None:
                    record = store.load_record(fingerprint)
                    if record is not None:
                        result = CellResult(
                            cell=cell,
                            payload=CachedCellPayload(
                                fingerprint=fingerprint),
                            metrics=dict(record["metrics"]),
                            fingerprint=fingerprint, cached=True)
                if result is None:
                    skipped += 1
                    if store is not None:
                        all_rows.append(None)
                    _progress(index, cell, "skipped", fingerprint)
                    continue
            else:
                result = execute_or_replay(
                    cell, store=store, sweep_name=sweep.name,
                    share_lottery=share_lottery, workers=workers,
                    coin_cache=cache, pool=pool)
            results.append(result)
            if result.cached:
                replayed += 1
            else:
                computed += 1
            if store is not None:
                all_rows.append(result.row())
            _progress(index, cell,
                      "replayed" if result.cached else "computed",
                      fingerprint)
        lottery = None
        if cache is not None and store is None:
            # Counters are process-local: with a worker pool the coins
            # are drawn inside the workers, so say so in the artifact
            # rather than persisting misleading zeros.  Store-backed
            # runs omit the counters entirely: a warm replay draws no
            # coins, and its artifacts must be byte-identical to the
            # cold run's.
            lottery = dict(cache.stats())
            lottery["scope"] = ("main-process counters only; coins were "
                                "drawn in worker processes"
                                if pool is not None else "main process")
        store_stats = None
        if store is not None or shard is not None:
            store_stats = {
                "replayed": replayed,
                "computed": computed,
                "skipped": skipped,
                "salt": store.salt if store is not None else None,
                "shard": (f"{shard[0]}/{shard[1]}"
                          if shard is not None else None),
            }
        if store is not None:
            # The record lists the *full* expansion (including any
            # shard-skipped cells, as row-less holes) so concurrent
            # shards write equivalent records and the book sections the
            # whole sweep once the cell records exist.
            store.record_sweep(
                sweep.name, sweep.description, all_fingerprints,
                complete=(skipped == 0), rows=all_rows)
        return SweepResult(
            name=sweep.name, cells=results, lottery=lottery,
            store_stats=store_stats)
    finally:
        if pool is not None:
            pool.shutdown()
        if cache is not None:
            release_cache(cache.token)
