"""Pluggable storage backends for the experiment store.

:class:`~repro.harness.store.ExperimentStore` owns the *semantics* of
the store — the content-addressed fingerprint scheme, record schemas,
replay rules — while a :class:`StoreBackend` owns the *bytes*: where a
record lives and how it is read and written.  Two backends ship:

- :class:`JsonTreeBackend` — the original one-JSON-file-per-record
  layout (``cells/<fp[:2]>/<fp>.json``, ``sweeps/<name>.json``,
  ``jobs/<id>.json``).  Human-readable, diffable, atomic via
  temp-file + :func:`os.replace`.  The right choice for a single
  invocation writing a store it owns.
- :class:`SQLiteBackend` — one SQLite database file in WAL mode holding
  ``cells``, ``sweeps``, and ``jobs`` tables.  Safe for many concurrent
  readers and writers (threads *and* processes): WAL lets readers
  proceed under a writer, ``busy_timeout`` serializes competing writers,
  and every record write is one transaction.  The backend the
  experiment service (``python -m repro serve``) runs on.

Records cross the backend boundary as plain JSON-able dicts, and the
SQLite backend stores them as the canonical ``json.dumps`` text — so a
record round-trips *byte-identically* through either backend, and the
same cells recorded through both produce byte-identical sweep rows
(pinned by the differential tests in ``tests/test_backends.py``).

Backend selection is path-based (:func:`backend_for_path`): a path with
a ``.sqlite``/``.sqlite3``/``.db`` suffix — or an existing SQLite file —
selects :class:`SQLiteBackend`; anything else is a JSON tree directory.
``python -m repro sweep NAME --store results.sqlite`` therefore records
through SQLite with no new flags.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

#: Path suffixes that select the SQLite backend.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: The 16-byte header every SQLite database file starts with.
_SQLITE_MAGIC = b"SQLite format 3\x00"


def _dumps(record: Dict[str, Any]) -> str:
    """The canonical record encoding shared by both backends (the JSON
    tree writes exactly this text; SQLite stores it as the row value),
    so records survive a backend migration byte-identically."""
    return json.dumps(record, indent=2) + "\n"


class StoreBackend:
    """Abstract record storage: three namespaces of JSON documents.

    ``cells`` are keyed by fingerprint, ``sweeps`` and ``jobs`` by name.
    Implementations must make single-record writes atomic (a reader
    never observes a half-written record) and tolerate concurrent
    writers racing on one key (last complete write wins; for cell
    records the racers carry identical bytes, so either order is fine).
    """

    #: Human-readable backend name (provenance lines, CLI output).
    kind: str = "abstract"

    # -- cells --------------------------------------------------------------
    def load_cell(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def save_cell(self, fingerprint: str, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def cell_count(self) -> int:
        raise NotImplementedError

    # -- sweeps -------------------------------------------------------------
    def load_sweep(self, name: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def save_sweep(self, name: str, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def sweep_names(self) -> List[str]:
        raise NotImplementedError

    # -- jobs ---------------------------------------------------------------
    def load_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def save_job(self, job_id: str, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def update_job(self, job_id: str,
                   mutate: Callable[[Dict[str, Any]], Dict[str, Any]],
                   ) -> Optional[Dict[str, Any]]:
        """Atomic read-modify-write of one job record.

        ``mutate`` receives the current record (never None — a missing
        job returns None without calling it) and returns the replacement;
        concurrent updaters serialize, so counter increments from many
        workers never lose updates.  Returns the stored result.
        """
        raise NotImplementedError

    def job_ids(self) -> List[str]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (connections); safe to call twice."""


class JsonTreeBackend(StoreBackend):
    """The original human-readable layout: one JSON file per record.

    Atomicity comes from a same-directory ``mkstemp`` + ``os.replace``
    (a unique temp name, so two concurrent writers of one key cannot
    replace each other's just-renamed file away).  ``update_job`` is
    serialized by an in-process lock only — good for the single-process
    service and CLI; cross-process job mutation is the SQLite backend's
    job.
    """

    kind = "json"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._job_lock = threading.Lock()

    # -- shared file plumbing ----------------------------------------------
    @staticmethod
    def _write_json(path: Path, record: Dict[str, Any]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=path.name + ".", suffix=".tmp")
        replaced = False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(_dumps(record))
            os.replace(tmp, path)
            replaced = True
        finally:
            if not replaced:
                # Serialization/ENOSPC failure: do not litter the
                # content-addressed tree with orphaned temp files.
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    @staticmethod
    def _read_json(path: Path) -> Optional[Dict[str, Any]]:
        """Parse one record file; a truncated/corrupted/non-object file
        reads as None — the same treat-as-miss philosophy as a schema
        mismatch (re-record rather than crash a resume)."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def _cell_path(self, fingerprint: str) -> Path:
        return self.root / "cells" / fingerprint[:2] / f"{fingerprint}.json"

    def _sweep_path(self, name: str) -> Path:
        return self.root / "sweeps" / f"{name}.json"

    def _job_path(self, job_id: str) -> Path:
        return self.root / "jobs" / f"{job_id}.json"

    # -- cells --------------------------------------------------------------
    def load_cell(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        path = self._cell_path(fingerprint)
        if not path.exists():
            return None
        return self._read_json(path)

    def save_cell(self, fingerprint: str, record: Dict[str, Any]) -> None:
        self._write_json(self._cell_path(fingerprint), record)

    def cell_count(self) -> int:
        root = self.root / "cells"
        if not root.exists():
            return 0
        return sum(1 for _ in root.glob("*/*.json"))

    # -- sweeps -------------------------------------------------------------
    def load_sweep(self, name: str) -> Optional[Dict[str, Any]]:
        path = self._sweep_path(name)
        if not path.exists():
            return None
        return self._read_json(path)

    def save_sweep(self, name: str, record: Dict[str, Any]) -> None:
        self._write_json(self._sweep_path(name), record)

    def sweep_names(self) -> List[str]:
        root = self.root / "sweeps"
        if not root.exists():
            return []
        return sorted(path.stem for path in root.glob("*.json"))

    # -- jobs ---------------------------------------------------------------
    def load_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        path = self._job_path(job_id)
        if not path.exists():
            return None
        return self._read_json(path)

    def save_job(self, job_id: str, record: Dict[str, Any]) -> None:
        self._write_json(self._job_path(job_id), record)

    def update_job(self, job_id, mutate):
        with self._job_lock:
            record = self.load_job(job_id)
            if record is None:
                return None
            record = mutate(record)
            self.save_job(job_id, record)
            return record

    def job_ids(self) -> List[str]:
        root = self.root / "jobs"
        if not root.exists():
            return []
        return sorted(path.stem for path in root.glob("*.json"))


class SQLiteBackend(StoreBackend):
    """One WAL-mode SQLite file holding cells, sweeps, and jobs.

    Concurrency model:

    - **connections** are per-thread (a :class:`threading.local`), so
      one backend object is safe to share across the service's worker
      threads; separate processes open their own connections against
      the same file.
    - **WAL** journal mode lets any number of readers proceed while a
      writer commits; ``busy_timeout`` makes competing writers queue
      instead of erroring.
    - **writes** are one ``INSERT OR REPLACE`` per record inside an
      implicit transaction — a reader sees the old record or the new
      one, never a torn one.
    - **job updates** run read-modify-write inside ``BEGIN IMMEDIATE``,
      taking the write lock before the read so concurrent counter
      increments from many workers serialize losslessly.

    Record values are the canonical JSON text (:func:`_dumps`), so the
    bytes are identical to the JSON tree's files and migration between
    backends is a plain copy of values.
    """

    kind = "sqlite"

    _SCHEMA_SQL = (
        "CREATE TABLE IF NOT EXISTS cells ("
        " fingerprint TEXT PRIMARY KEY, record TEXT NOT NULL)",
        "CREATE TABLE IF NOT EXISTS sweeps ("
        " name TEXT PRIMARY KEY, record TEXT NOT NULL)",
        "CREATE TABLE IF NOT EXISTS jobs ("
        " id TEXT PRIMARY KEY, record TEXT NOT NULL)",
    )

    def __init__(self, path, timeout: float = 30.0) -> None:
        self.root = Path(path)
        self.timeout = timeout
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        # Create the schema eagerly so concurrent first users (and
        # read-only consumers like `repro report`) never race DDL.
        self._connection()

    def _connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            self.root.parent.mkdir(parents=True, exist_ok=True)
            connection = sqlite3.connect(self.root, timeout=self.timeout)
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(
                f"PRAGMA busy_timeout={int(self.timeout * 1000)}")
            for statement in self._SCHEMA_SQL:
                connection.execute(statement)
            connection.commit()
            self._local.connection = connection
            with self._connections_lock:
                self._connections.append(connection)
        return connection

    @staticmethod
    def _decode(text: Optional[str]) -> Optional[Dict[str, Any]]:
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def _get(self, table: str, key_column: str, key: str) -> Optional[str]:
        row = self._connection().execute(
            f"SELECT record FROM {table} WHERE {key_column} = ?",
            (key,)).fetchone()
        return row[0] if row is not None else None

    def _put(self, table: str, key_column: str, key: str,
             record: Dict[str, Any]) -> None:
        connection = self._connection()
        with connection:
            connection.execute(
                f"INSERT OR REPLACE INTO {table} ({key_column}, record) "
                "VALUES (?, ?)", (key, _dumps(record)))

    # -- cells --------------------------------------------------------------
    def load_cell(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        return self._decode(self._get("cells", "fingerprint", fingerprint))

    def save_cell(self, fingerprint: str, record: Dict[str, Any]) -> None:
        self._put("cells", "fingerprint", fingerprint, record)

    def cell_count(self) -> int:
        row = self._connection().execute(
            "SELECT COUNT(*) FROM cells").fetchone()
        return int(row[0])

    # -- sweeps -------------------------------------------------------------
    def load_sweep(self, name: str) -> Optional[Dict[str, Any]]:
        return self._decode(self._get("sweeps", "name", name))

    def save_sweep(self, name: str, record: Dict[str, Any]) -> None:
        self._put("sweeps", "name", name, record)

    def sweep_names(self) -> List[str]:
        rows = self._connection().execute(
            "SELECT name FROM sweeps ORDER BY name").fetchall()
        return [row[0] for row in rows]

    # -- jobs ---------------------------------------------------------------
    def load_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        return self._decode(self._get("jobs", "id", job_id))

    def save_job(self, job_id: str, record: Dict[str, Any]) -> None:
        self._put("jobs", "id", job_id, record)

    def update_job(self, job_id, mutate):
        connection = self._connection()
        with connection:
            # BEGIN IMMEDIATE takes the write lock *before* the read, so
            # two workers incrementing one job's counters serialize
            # rather than both reading the same snapshot.
            connection.execute("BEGIN IMMEDIATE")
            row = connection.execute(
                "SELECT record FROM jobs WHERE id = ?", (job_id,)).fetchone()
            record = self._decode(row[0]) if row is not None else None
            if record is None:
                return None
            record = mutate(record)
            connection.execute(
                "INSERT OR REPLACE INTO jobs (id, record) VALUES (?, ?)",
                (job_id, _dumps(record)))
            return record

    def job_ids(self) -> List[str]:
        rows = self._connection().execute(
            "SELECT id FROM jobs ORDER BY id").fetchall()
        return [row[0] for row in rows]

    def close(self) -> None:
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()


def is_sqlite_path(path) -> bool:
    """Whether ``path`` should select the SQLite backend: a recognized
    suffix, or an existing file that starts with the SQLite magic (so a
    DB created under any name keeps reading through the right backend)."""
    path = Path(path)
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return True
    if path.is_file():
        try:
            with path.open("rb") as handle:
                return handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
        except OSError:
            return False
    return False


def backend_for_path(root, backend: Optional[str] = None) -> StoreBackend:
    """Resolve a store path (plus an optional explicit ``"json"`` /
    ``"sqlite"`` override) into a backend instance."""
    if backend is None:
        backend = "sqlite" if is_sqlite_path(root) else "json"
    if backend == "json":
        return JsonTreeBackend(root)
    if backend == "sqlite":
        return SQLiteBackend(root)
    raise ValueError(
        f"unknown store backend {backend!r} (have: json, sqlite)")
