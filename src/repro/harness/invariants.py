"""Transcript-level invariants: the lemma statements, checked live.

End-state predicates (consistency, validity) can pass by luck; these
checkers instead scan the *entire transcript* of an execution for the
intermediate facts the Appendix C proofs assert:

- :func:`no_conflicting_certificates_after_decision` — Lemma 13: once any
  honest node outputs ``b`` in iteration ``r``, no certificate for
  ``1 - b`` of rank ``>= r`` may exist anywhere, ever.
- :func:`honest_votes_unique_per_iteration` — so-far-honest nodes cast at
  most one vote per iteration (the counting premise of Lemma 11).
- :func:`commits_carry_valid_certificates` — every commit on the wire
  carries a quorum certificate for exactly its (iteration, bit).
- :func:`quorum_intersection_on_acks` — phase-king "consistency within an
  epoch": no epoch carries ample ACK sets for both bits (with honest
  uniqueness, Section 3.1).

They operate purely on :class:`~repro.sim.result.ExecutionResult`
transcripts, so they can be applied to *any* execution, adversarial or
not, making them ideal property-test oracles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.protocols.certificates import Certificate
from repro.protocols.messages import (
    AckMsg,
    CommitMsg,
    TerminateMsg,
    VoteMsg,
)
from repro.sim.result import ExecutionResult
from repro.types import Bit, NodeId


def _require_transcript(result: ExecutionResult) -> None:
    """Transcript checkers are meaningless on a discarded transcript: an
    empty list would make every invariant vacuously pass."""
    result.require_transcript()


def _certificates_in_transcript(result: ExecutionResult) -> List[Certificate]:
    """Every certificate attached to any message on the wire."""
    certificates: List[Certificate] = []
    for envelope in result.transcript:
        payload = envelope.payload
        for attribute in ("certificate",):
            certificate = getattr(payload, attribute, None)
            if isinstance(certificate, Certificate):
                certificates.append(certificate)
        if isinstance(payload, VoteMsg) and payload.proposal is not None:
            certificate = payload.proposal.certificate
            if isinstance(certificate, Certificate):
                certificates.append(certificate)
        if isinstance(payload, TerminateMsg):
            for commit in payload.commits:
                if isinstance(commit.certificate, Certificate):
                    certificates.append(commit.certificate)
    return certificates


def decision_points(result: ExecutionResult,
                    nodes) -> List[Tuple[NodeId, int, Bit]]:
    """(node, iteration, bit) for every honest decision, from node state."""
    points = []
    for node in nodes:
        inner = getattr(node, "inner", node)  # unwrap BroadcastNode
        iteration = getattr(inner, "decision_iteration", None)
        decision = getattr(inner, "decision", None)
        if (iteration is not None and decision is not None
                and node.node_id not in result.corrupt_set):
            points.append((node.node_id, iteration, decision))
    return points


def no_conflicting_certificates_after_decision(
        result: ExecutionResult, nodes) -> Optional[str]:
    """Lemma 13, checked on the wire.  Returns a violation description or
    None if the invariant holds."""
    _require_transcript(result)
    decisions = decision_points(result, nodes)
    if not decisions:
        return None
    certificates = _certificates_in_transcript(result)
    for node_id, iteration, bit in decisions:
        for certificate in certificates:
            if (certificate.bit == 1 - bit
                    and certificate.iteration >= iteration
                    and len({v.voter for v in certificate.votes}) > 0):
                return (f"node {node_id} decided {bit} at iteration "
                        f"{iteration} but a rank-{certificate.iteration} "
                        f"certificate for {1 - bit} is on the wire")
    return None


def honest_votes_unique_per_iteration(result: ExecutionResult
                                      ) -> Optional[str]:
    """So-far-honest nodes vote for at most one bit per iteration."""
    _require_transcript(result)
    seen: Dict[Tuple[NodeId, int], Set[Bit]] = {}
    for envelope in result.transcript:
        payload = envelope.payload
        if not isinstance(payload, VoteMsg):
            continue
        if not envelope.honest_sender:
            continue
        bits = seen.setdefault((payload.sender, payload.iteration), set())
        bits.add(payload.bit)
        if len(bits) > 1:
            return (f"honest node {payload.sender} voted both bits in "
                    f"iteration {payload.iteration}")
    return None


def commits_carry_valid_certificates(result: ExecutionResult,
                                     threshold: int) -> Optional[str]:
    """Every honest commit's certificate matches its (iteration, bit) and
    carries a quorum of distinct voters."""
    _require_transcript(result)
    for envelope in result.transcript:
        payload = envelope.payload
        if not isinstance(payload, CommitMsg) or not envelope.honest_sender:
            continue
        certificate = payload.certificate
        if certificate is None:
            return f"honest commit by {payload.sender} without certificate"
        if (certificate.iteration != payload.iteration
                or certificate.bit != payload.bit):
            return (f"commit by {payload.sender} with mismatched "
                    f"certificate ({certificate.iteration},"
                    f"{certificate.bit})")
        voters = {vote.voter for vote in certificate.votes}
        if len(voters) < threshold:
            return (f"commit by {payload.sender} with sub-quorum "
                    f"certificate ({len(voters)} < {threshold})")
    return None


def quorum_intersection_on_acks(result: ExecutionResult,
                                threshold: int) -> Optional[str]:
    """Phase-king §3.1: no epoch has ample ACK sets for both bits."""
    _require_transcript(result)
    acks: Dict[Tuple[int, Bit], Set[NodeId]] = {}
    for envelope in result.transcript:
        payload = envelope.payload
        if isinstance(payload, AckMsg):
            acks.setdefault((payload.epoch, payload.bit), set()).add(
                payload.sender)
    epochs = {epoch for epoch, _bit in acks}
    for epoch in epochs:
        zero = len(acks.get((epoch, 0), set()))
        one = len(acks.get((epoch, 1), set()))
        if zero >= threshold and one >= threshold:
            return (f"epoch {epoch} has ample ACKs for both bits "
                    f"({zero} and {one} >= {threshold})")
    return None


def check_aba_invariants(result: ExecutionResult, nodes,
                         threshold: int) -> List[str]:
    """All iterated-BA invariants; returns the list of violations."""
    violations = []
    for check in (
        lambda: no_conflicting_certificates_after_decision(result, nodes),
        lambda: honest_votes_unique_per_iteration(result),
        lambda: commits_carry_valid_certificates(result, threshold),
    ):
        violation = check()
        if violation is not None:
            violations.append(violation)
    return violations
