"""Convenience runners used by tests, examples, and benchmarks.

``run_instance`` wires a :class:`~repro.protocols.base.ProtocolInstance`
into a :class:`~repro.sim.engine.Simulation` against an (optionally
instance-aware) adversary; ``run_trials`` repeats a builder across seeds —
optionally fanning the seeds across worker processes — and aggregates the
security predicates into a :class:`TrialStats`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.protocols.base import ProtocolInstance
from repro.sim.adversary import Adversary
from repro.sim.conditions import NetworkConditions, NetworkStats
from repro.sim.engine import TRANSCRIPT_FULL, Simulation
from repro.sim.result import ExecutionResult
from repro.types import AdversaryModel

#: Builds an adversary for a freshly constructed protocol instance.
AdversaryFactory = Callable[[ProtocolInstance], Adversary]


def run_instance(
    instance: ProtocolInstance,
    f: int,
    adversary: Optional[Adversary] = None,
    model: AdversaryModel = AdversaryModel.ADAPTIVE,
    seed=0,
    max_rounds: Optional[int] = None,
    transcript_retention: str = TRANSCRIPT_FULL,
    conditions: Optional[NetworkConditions] = None,
    scheduler: Optional[str] = None,
) -> ExecutionResult:
    """Execute one protocol instance against one adversary.

    ``scheduler`` selects the conditioned-execution loop (``"event"`` /
    ``"lockstep"``; ``None`` = the engine default, overridable via
    ``REPRO_SCHEDULER``) — the two are result-identical by the
    conformance suite, so this knob only matters for A/B timing and the
    differential tests themselves.
    """
    simulation = Simulation(
        nodes=instance.nodes,
        corruption_budget=f,
        model=model,
        adversary=adversary,
        max_rounds=max_rounds if max_rounds is not None else instance.max_rounds,
        seed=seed,
        inputs=instance.inputs,
        signing_capabilities=instance.signing_capabilities,
        mining_capabilities=instance.mining_capabilities,
        transcript_retention=transcript_retention,
        conditions=conditions,
        scheduler=scheduler,
    )
    return simulation.run()


class TrialStats:
    """Aggregated security predicates over repeated executions.

    Each predicate is evaluated exactly once, when the result is added;
    the rate properties read O(1) counters instead of re-scanning every
    stored result on each access.  Results enter exclusively through
    :meth:`add` (``results`` is a read-only view), so the counters can
    never drift from the stored sample.
    """

    def __init__(self, results: Optional[List[ExecutionResult]] = None) -> None:
        self._results: List[ExecutionResult] = []
        self._consistent = 0
        self._valid = 0
        self._violations = 0
        self._decided = 0
        self._multicasts = 0
        self._multicast_bits = 0
        self._rounds = 0
        self._corruptions = 0
        self._rounds_saved = 0
        self._max_message_bits = 0
        self._network_trials = 0
        self._network = NetworkStats()
        for result in results or []:
            self.add(result)

    @property
    def results(self) -> Tuple[ExecutionResult, ...]:
        """The stored results, as an immutable view (use :meth:`add`)."""
        return tuple(self._results)

    def add(self, result: ExecutionResult) -> None:
        self._results.append(result)
        consistent = result.consistent()
        valid = result.agreement_valid()
        self._consistent += consistent
        self._valid += valid
        self._violations += not (consistent and valid)
        self._decided += result.all_decided()
        self._multicasts += result.metrics.multicast_complexity_messages
        self._multicast_bits += result.metrics.multicast_complexity_bits
        self._rounds += result.rounds_executed
        self._corruptions += result.corruptions_used
        self._rounds_saved += result.rounds_saved
        self._max_message_bits = max(self._max_message_bits,
                                     result.metrics.max_message_bits)
        network = result.network_stats
        if network is not None:
            self._network_trials += 1
            self._network.accumulate(network)

    @property
    def trials(self) -> int:
        return len(self._results)

    @property
    def consistency_rate(self) -> float:
        return self._consistent / self.trials if self._results else 1.0

    @property
    def validity_rate(self) -> float:
        return self._valid / self.trials if self._results else 1.0

    @property
    def violation_rate(self) -> float:
        return self._violations / self.trials if self._results else 0.0

    @property
    def termination_rate(self) -> float:
        return self._decided / self.trials if self._results else 1.0

    @property
    def mean_multicasts(self) -> float:
        return self._multicasts / self.trials if self._results else 0.0

    @property
    def mean_multicast_bits(self) -> float:
        return self._multicast_bits / self.trials if self._results else 0.0

    @property
    def mean_rounds(self) -> float:
        return self._rounds / self.trials if self._results else 0.0

    @property
    def mean_corruptions(self) -> float:
        return self._corruptions / self.trials if self._results else 0.0

    @property
    def mean_rounds_saved(self) -> float:
        """Mean protocol rounds finished under the round budget — the
        payoff axis of the early-stopping variants (0.0 for protocols
        that always run their full budget)."""
        return self._rounds_saved / self.trials if self._results else 0.0

    @property
    def max_message_bits(self) -> int:
        """Largest single message seen across all trials."""
        return self._max_message_bits

    # -- network-conditions aggregates (conditioned executions only) --------
    @property
    def has_network_stats(self) -> bool:
        """Whether any trial ran under nontrivial network conditions."""
        return self._network_trials > 0

    @property
    def network(self) -> NetworkStats:
        """All conditioned trials folded into one :class:`NetworkStats`
        (sums; peak for ``max_in_flight``)."""
        return self._network

    @property
    def mean_delivery_latency(self) -> float:
        """Effective round latency: mean copy delay in network rounds,
        across every delivered copy of every conditioned trial."""
        return self._network.mean_delivery_latency

    @property
    def max_in_flight(self) -> int:
        """Peak scheduled-but-undelivered copies across conditioned trials."""
        return self._network.max_in_flight

    @property
    def dropped_copies(self) -> int:
        """Total pre-GST copy drops across conditioned trials."""
        return self._network.dropped_copies

    @property
    def skipped_ticks(self) -> int:
        """Total idle network ticks across conditioned trials — the
        rounds the event engine skips outright (and the lock-step
        synchronizer executes as no-ops; the count is engine-invariant).
        Their share of ``network.network_rounds`` is the empty-round
        density the event engine's wall-clock win tracks."""
        return self._network.skipped_ticks

    @property
    def events_processed(self) -> int:
        """Total delivery-queue events across conditioned trials
        (schedules, pre-GST duplicates, partition re-queues)."""
        return self._network.events_processed

    def decision_rounds(self) -> List[int]:
        rounds: List[int] = []
        for result in self._results:
            rounds.extend(result.decision_rounds())
        return rounds


def _run_one_trial(
    builder: Callable[..., ProtocolInstance],
    f: int,
    seed,
    adversary_factory: Optional[AdversaryFactory],
    model: AdversaryModel,
    transcript_retention: str,
    conditions: Optional[NetworkConditions],
    builder_kwargs: dict,
    builder_takes_conditions: bool = False,
) -> ExecutionResult:
    """One seed's build-and-run; module-level so worker processes can
    receive it by pickle."""
    if builder_takes_conditions:
        builder_kwargs = dict(builder_kwargs, conditions=conditions)
    instance = builder(f=f, seed=seed, **builder_kwargs)
    adversary = (adversary_factory(instance)
                 if adversary_factory is not None else None)
    return run_instance(instance, f, adversary, model, seed=seed,
                        transcript_retention=transcript_retention,
                        conditions=conditions)


def run_trials(
    builder: Callable[..., ProtocolInstance],
    f: int,
    seeds: Sequence,
    adversary_factory: Optional[AdversaryFactory] = None,
    model: AdversaryModel = AdversaryModel.ADAPTIVE,
    workers: int = 1,
    transcript_retention: str = TRANSCRIPT_FULL,
    conditions: Optional[NetworkConditions] = None,
    builder_takes_conditions: bool = False,
    pool=None,
    **builder_kwargs,
) -> TrialStats:
    """Build and run the protocol once per seed; aggregate the outcomes.

    The builder receives ``seed=<seed>`` plus ``builder_kwargs``; the
    adversary factory (if any) is invoked on each fresh instance, so
    attacks can read the instance's services.
    ``builder_takes_conditions`` forwards ``conditions`` to the builder
    as well — for the GST-aware early-stopping builders, which derive
    their trusted-round gate from the same conditions the engine runs
    under.

    ``workers > 1`` fans the seeds across a ``ProcessPoolExecutor``.
    Results are aggregated in seed order regardless of which worker
    finishes first, so ``TrialStats`` is identical for any worker count
    (each trial is already independently seeded).  The builder, the
    adversary factory, and the execution results must be picklable —
    true for all module-level builders in this repo.

    ``pool`` lends an already-running ``ProcessPoolExecutor`` instead:
    the caller keeps ownership (it is not shut down here), so worker
    processes — and any process-local state they carry, like the shared
    eligibility-lottery caches — persist across consecutive calls.
    :func:`~repro.harness.scenarios.run_sweep` uses this to share one
    pool across a whole sweep.
    """
    stats = TrialStats()
    seeds = list(seeds)
    if pool is None and workers > 1 and len(seeds) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(workers, len(seeds))) as owned:
            futures = [
                owned.submit(_run_one_trial, builder, f, seed,
                             adversary_factory, model, transcript_retention,
                             conditions, builder_kwargs,
                             builder_takes_conditions)
                for seed in seeds
            ]
            for future in futures:
                stats.add(future.result())
    elif pool is not None and seeds:
        # Even a single seed routes through the lent pool: the pool's
        # worker processes carry state the caller lent it to preserve
        # (per-worker lottery caches, the REPRO_SCHEDULER environment),
        # and running the lone seed in the parent would silently bypass
        # both.  Results are pool-vs-inline identical either way (each
        # trial is independently seeded; pinned by tests).
        futures = [
            pool.submit(_run_one_trial, builder, f, seed,
                        adversary_factory, model, transcript_retention,
                        conditions, builder_kwargs, builder_takes_conditions)
            for seed in seeds
        ]
        for future in futures:
            stats.add(future.result())
    else:
        for seed in seeds:
            stats.add(_run_one_trial(builder, f, seed, adversary_factory,
                                     model, transcript_retention,
                                     conditions, builder_kwargs,
                                     builder_takes_conditions))
    return stats
