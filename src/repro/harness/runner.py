"""Convenience runners used by tests, examples, and benchmarks.

``run_instance`` wires a :class:`~repro.protocols.base.ProtocolInstance`
into a :class:`~repro.sim.engine.Simulation` against an (optionally
instance-aware) adversary; ``run_trials`` repeats a builder across seeds
and aggregates the security predicates into a :class:`TrialStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.protocols.base import ProtocolInstance
from repro.sim.adversary import Adversary
from repro.sim.engine import Simulation
from repro.sim.result import ExecutionResult
from repro.types import AdversaryModel

#: Builds an adversary for a freshly constructed protocol instance.
AdversaryFactory = Callable[[ProtocolInstance], Adversary]


def run_instance(
    instance: ProtocolInstance,
    f: int,
    adversary: Optional[Adversary] = None,
    model: AdversaryModel = AdversaryModel.ADAPTIVE,
    seed=0,
    max_rounds: Optional[int] = None,
) -> ExecutionResult:
    """Execute one protocol instance against one adversary."""
    simulation = Simulation(
        nodes=instance.nodes,
        corruption_budget=f,
        model=model,
        adversary=adversary,
        max_rounds=max_rounds if max_rounds is not None else instance.max_rounds,
        seed=seed,
        inputs=instance.inputs,
        signing_capabilities=instance.signing_capabilities,
        mining_capabilities=instance.mining_capabilities,
    )
    return simulation.run()


@dataclass
class TrialStats:
    """Aggregated security predicates over repeated executions."""

    results: List[ExecutionResult] = field(default_factory=list)

    def add(self, result: ExecutionResult) -> None:
        self.results.append(result)

    @property
    def trials(self) -> int:
        return len(self.results)

    @property
    def consistency_rate(self) -> float:
        if not self.results:
            return 1.0
        return sum(r.consistent() for r in self.results) / len(self.results)

    @property
    def validity_rate(self) -> float:
        if not self.results:
            return 1.0
        return sum(r.agreement_valid() for r in self.results) / len(self.results)

    @property
    def violation_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(
            not (r.consistent() and r.agreement_valid()) for r in self.results
        ) / len(self.results)

    @property
    def termination_rate(self) -> float:
        if not self.results:
            return 1.0
        return sum(r.all_decided() for r in self.results) / len(self.results)

    @property
    def mean_multicasts(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.metrics.multicast_complexity_messages
                   for r in self.results) / len(self.results)

    @property
    def mean_multicast_bits(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.metrics.multicast_complexity_bits
                   for r in self.results) / len(self.results)

    @property
    def mean_rounds(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.rounds_executed for r in self.results) / len(self.results)

    @property
    def mean_corruptions(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.corruptions_used for r in self.results) / len(self.results)

    def decision_rounds(self) -> List[int]:
        rounds: List[int] = []
        for result in self.results:
            rounds.extend(result.decision_rounds())
        return rounds


def run_trials(
    builder: Callable[..., ProtocolInstance],
    f: int,
    seeds: Sequence,
    adversary_factory: Optional[AdversaryFactory] = None,
    model: AdversaryModel = AdversaryModel.ADAPTIVE,
    **builder_kwargs,
) -> TrialStats:
    """Build and run the protocol once per seed; aggregate the outcomes.

    The builder receives ``seed=<seed>`` plus ``builder_kwargs``; the
    adversary factory (if any) is invoked on each fresh instance, so
    attacks can read the instance's services.
    """
    stats = TrialStats()
    for seed in seeds:
        instance = builder(f=f, seed=seed, **builder_kwargs)
        adversary = (adversary_factory(instance)
                     if adversary_factory is not None else None)
        stats.add(run_instance(instance, f, adversary, model, seed=seed))
    return stats
