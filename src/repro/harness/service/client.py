"""A small urllib client for the experiment service's HTTP API.

Backs ``python -m repro submit`` / ``python -m repro status`` and the
test/CI harnesses; no third-party dependencies.  Every method maps to
one route of :mod:`repro.harness.service.app`; errors surface as
:class:`ServiceError` carrying the HTTP status and the server's JSON
``error`` message.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional
from urllib import error as urllib_error
from urllib import request as urllib_request

#: States in which a job will never change again.
TERMINAL_STATES = ("done", "failed")


class ServiceError(RuntimeError):
    """An HTTP-level or API-level failure talking to the service."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Client for one experiment service base URL."""

    def __init__(self, base_url: str = "http://127.0.0.1:8765",
                 timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------
    def _request(self, path: str, payload: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None) -> Any:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib_request.Request(url, data=data, headers=headers)
        try:
            with urllib_request.urlopen(
                    req, timeout=timeout or self.timeout) as response:
                body = response.read()
        except urllib_error.HTTPError as error:
            detail = ""
            try:
                detail = json.loads(error.read().decode("utf-8")
                                    ).get("error", "")
            except (ValueError, AttributeError, UnicodeDecodeError):
                pass
            raise ServiceError(
                f"{url}: HTTP {error.code}"
                + (f" — {detail}" if detail else ""),
                status=error.code) from None
        except (urllib_error.URLError, OSError) as error:
            raise ServiceError(f"{url}: {error}") from None
        return body

    def _request_json(self, path: str,
                      payload: Optional[Dict[str, Any]] = None,
                      timeout: Optional[float] = None) -> Dict[str, Any]:
        body = self._request(path, payload=payload, timeout=timeout)
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ServiceError(
                f"{self.base_url}{path}: non-JSON response") from None
        if not isinstance(decoded, dict):
            raise ServiceError(
                f"{self.base_url}{path}: unexpected response shape")
        return decoded

    # -- the API ------------------------------------------------------------
    def health(self) -> bool:
        return self._request_json("/healthz").get("status") == "ok"

    def sweeps(self) -> Dict[str, Any]:
        """``{"available": {name: description}, "recorded": [names]}``."""
        return self._request_json("/api/sweeps")

    def submit(self, sweep: str, share_lottery: bool = True,
               network: Optional[str] = None,
               topology: Optional[str] = None) -> str:
        """Submit a sweep; returns the new job id."""
        payload: Dict[str, Any] = {"sweep": sweep,
                                   "share_lottery": share_lottery}
        if network is not None:
            payload["network"] = network
        if topology is not None:
            payload["topology"] = topology
        return self._request_json("/api/sweeps", payload=payload)["job"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request_json(f"/api/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request_json("/api/jobs")["jobs"]

    def events(self, job_id: str, since: int = 0,
               poll_timeout: float = 25.0) -> Dict[str, Any]:
        """One long-poll round: blocks server-side until new events (or
        ``poll_timeout``); returns ``{"job", "events", "next"}``."""
        return self._request_json(
            f"/api/jobs/{job_id}/events?since={since}"
            f"&timeout={poll_timeout}",
            timeout=poll_timeout + self.timeout)

    def wait(self, job_id: str,
             on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
             poll_timeout: float = 25.0,
             max_wait: Optional[float] = None) -> Dict[str, Any]:
        """Long-poll until the job settles; returns the final record.

        ``on_event`` sees each per-cell progress event as it arrives.
        ``max_wait`` bounds the total wait (raises :class:`ServiceError`
        on expiry — the job keeps running server-side).
        """
        import time
        deadline = None if max_wait is None else time.monotonic() + max_wait
        seen = 0
        while True:
            batch = self.events(job_id, since=seen,
                                poll_timeout=poll_timeout)
            for event in batch["events"]:
                if on_event is not None:
                    on_event(event)
            seen = batch["next"]
            record = batch["job"]
            if record and record.get("state") in TERMINAL_STATES:
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {record.get('state')!r} after "
                    f"{max_wait}s (it keeps running server-side)")

    def sweep_rows(self, name: str) -> Dict[str, Any]:
        """``{"sweep", "complete", "rows"}`` for one recorded sweep."""
        return self._request_json(f"/api/sweeps/{name}/rows")

    def artifact(self, name: str, fmt: str = "json") -> bytes:
        """The sweep's artifact bytes (``fmt`` = ``json`` | ``csv``) —
        byte-identical to a direct ``run_sweep`` export of the same
        cells."""
        if fmt not in ("json", "csv"):
            raise ValueError(f"fmt must be 'json' or 'csv', got {fmt!r}")
        return self._request(f"/api/sweeps/{name}/artifact.{fmt}")

    def book(self, fmt: str = "html") -> bytes:
        """The live results book (``fmt`` = ``html`` | ``md``)."""
        if fmt not in ("html", "md"):
            raise ValueError(f"fmt must be 'html' or 'md', got {fmt!r}")
        return self._request("/" if fmt == "html" else "/book.md")
