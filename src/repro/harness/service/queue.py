"""Job queue and persistent worker pool for the experiment service.

A submitted sweep becomes a **job**: the sweep expands to cells
immediately (so the job's total is known at submit time), every cell is
enqueued on one shared work queue, and a fixed pool of worker threads
drains the queue — many jobs' cells interleave, so a short job is not
stuck behind a long one.  Each cell settles through
:func:`~repro.harness.scenarios.execute_or_replay`: recorded cells
replay from the store, fresh cells execute and record **durably as they
finish** (a crashed service loses at most the in-flight cells; a
resubmitted job replays everything already recorded).

Job state is itself durable — one record per job in the store's
``jobs`` namespace (the ``jobs`` table of a SQLite store)::

    {"id", "sweep", "state": queued|running|done|failed,
     "total", "replayed", "computed", "failed_cells", "error",
     "share_lottery", "overrides", "submitted_at", "started_at",
     "finished_at"}

Progress counters update through the backend's atomic read-modify-write
(:meth:`~repro.harness.store.ExperimentStore.update_job`), so counts
from many workers never lose increments.  In-memory, each job also
keeps an ordered event log (one entry per settled cell) that the HTTP
layer long-polls/streams; events are ephemeral — status survives a
restart, the fine-grained log does not.

Determinism: cells are executed with ``workers=1`` and no shared
lottery cache inside whichever worker thread picks them up — a cell's
results are a pure function of its bindings and seeds, so execution
order across threads cannot affect the recorded rows, and the sweep
record written at job completion lists rows in expansion order.  The
recorded rows are byte-identical to a direct
:func:`~repro.harness.scenarios.run_sweep` against any backend (pinned
by tests and the CI ``service-smoke`` differential).
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
import uuid
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.harness.scenarios import Cell, execute_or_replay
from repro.harness.sweep_library import SWEEPS, resolve_sweep

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: Every state a job record can carry, in lifecycle order.
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)


def _now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


class _ActiveJob:
    """In-memory bookkeeping for one submitted job (the durable record
    lives in the store; this holds what finalization needs: the spec,
    ordered fingerprints/rows, and the event log)."""

    def __init__(self, job_id: str, spec, cells: List[Cell],
                 fingerprints: List[str], share_lottery: bool) -> None:
        self.id = job_id
        self.spec = spec
        self.cells = cells
        self.fingerprints = fingerprints
        self.share_lottery = share_lottery
        self.rows: List[Optional[Dict[str, Any]]] = [None] * len(cells)
        self.remaining = len(cells)
        self.failed = False
        self.events: List[Dict[str, Any]] = []
        self.lock = threading.Lock()


class ExperimentService:
    """A persistent worker pool draining sweep jobs against one store.

    ``workers`` threads execute cells; submission never blocks on
    execution.  The service is safe to drive from many HTTP threads at
    once (submission, status reads, and event waits all synchronize on
    one condition), and the store backend underneath is safe for
    concurrent writers — pair it with a SQLite store when several
    service processes or external sweep runs share one corpus.
    """

    def __init__(self, store, workers: int = 2) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"service needs at least one worker, got {workers}")
        self.store = store
        self.workers = workers
        self._tasks: "queue.Queue[Optional[tuple]]" = queue.Queue()
        self._active: Dict[str, _ActiveJob] = {}
        #: Event logs of settled jobs, kept so pollers can read the tail
        #: after completion; bounded (oldest evicted) — the durable job
        #: record, not this log, is the source of truth.
        self._finished_events: "OrderedDict[str, List[Dict[str, Any]]]" = \
            OrderedDict()
        self._finished_cap = 64
        self._condition = threading.Condition()
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-worker-{index}", daemon=True)
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ---------------------------------------------------------
    def submit(self, sweep_name: str, share_lottery: bool = True,
               network: Optional[str] = None,
               topology: Optional[str] = None) -> str:
        """Expand ``sweep_name`` (with optional forced network/topology
        overrides), persist a queued job record, and enqueue every cell.
        Returns the job id.  Raises
        :class:`~repro.errors.ConfigurationError` for an unknown sweep
        or override — before anything is enqueued or recorded."""
        spec = resolve_sweep(sweep_name, network=network, topology=topology)
        cells = spec.expand()
        fingerprints = [
            self.store.fingerprint(cell, share_lottery=share_lottery)
            for cell in cells
        ]
        job_id = f"{time.strftime('%Y%m%dT%H%M%SZ', time.gmtime())}-" \
                 f"{uuid.uuid4().hex[:8]}"
        overrides = {}
        if network is not None:
            overrides["network"] = network
        if topology is not None:
            overrides["topology"] = topology
        self.store.save_job(job_id, {
            "id": job_id,
            "sweep": spec.name,
            "state": JOB_QUEUED,
            "total": len(cells),
            "replayed": 0,
            "computed": 0,
            "failed_cells": 0,
            "error": None,
            "share_lottery": bool(share_lottery),
            "overrides": overrides,
            "submitted_at": _now(),
            "started_at": None,
            "finished_at": None,
        })
        active = _ActiveJob(job_id, spec, cells, fingerprints,
                            share_lottery)
        with self._condition:
            if self._closed:
                raise ConfigurationError("service is shut down")
            self._active[job_id] = active
        for index, cell in enumerate(cells):
            self._tasks.put((job_id, index))
        if not cells:
            # A sweep that expands to zero cells completes immediately
            # (nothing will ever decrement its remaining counter).
            self._finalize(active)
        return job_id

    @staticmethod
    def available_sweeps() -> Dict[str, str]:
        """Submittable sweep names mapped to their descriptions."""
        return {name: SWEEPS[name].description for name in sorted(SWEEPS)}

    # -- status and events --------------------------------------------------
    def job(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The durable job record (None for an unknown id)."""
        return self.store.load_job(job_id)

    def jobs(self) -> List[Dict[str, Any]]:
        """Every job record in the store, newest first (ids sort by
        their timestamp prefix)."""
        records = (self.store.load_job(job_id)
                   for job_id in reversed(self.store.job_ids()))
        return [record for record in records if record is not None]

    def events(self, job_id: str, since: int = 0,
               timeout: Optional[float] = None) -> List[Dict[str, Any]]:
        """The job's per-cell event log from index ``since`` on.

        With a ``timeout``, blocks (long-poll) until at least one new
        event exists, the job leaves the active set, or the timeout
        elapses — whichever is first.  Events are in settle order, each
        ``{"seq", "index", "status", "scenario", "label",
        "fingerprint"}``.  A job from a previous service process has no
        in-memory log; its events read as empty (the durable counters
        still tell the whole story).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                active = self._active.get(job_id)
                if active is None:
                    # Settled (or unknown/pre-restart) job: whatever log
                    # survives, without waiting — there will never be a
                    # new event.
                    return list(self._finished_events.get(job_id,
                                                          [])[since:])
                with active.lock:
                    fresh = list(active.events[since:])
                if fresh or deadline is None:
                    return fresh
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._condition.wait(remaining):
                    active = self._active.get(job_id)
                    if active is None:
                        return list(self._finished_events.get(
                            job_id, [])[since:])
                    with active.lock:
                        return list(active.events[since:])

    def wait(self, job_id: str, timeout: Optional[float] = None,
             ) -> Optional[Dict[str, Any]]:
        """Block until the job settles (done/failed) or ``timeout``
        elapses; returns the final (or latest) job record."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                record = self.store.load_job(job_id)
                if record is None or record["state"] in (JOB_DONE,
                                                         JOB_FAILED):
                    return record
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return record
                self._condition.wait(0.5 if remaining is None
                                     else min(0.5, remaining))

    # -- worker pool --------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            job_id, index = item
            with self._condition:
                active = self._active.get(job_id)
            if active is None:
                continue
            self._run_cell(active, index)

    def _run_cell(self, active: _ActiveJob, index: int) -> None:
        cell = active.cells[index]
        error_text: Optional[str] = None
        result = None
        try:
            result = execute_or_replay(
                cell, store=self.store, sweep_name=active.spec.name,
                share_lottery=active.share_lottery)
        except Exception:
            error_text = traceback.format_exc(limit=8)
        status = ("failed" if result is None
                  else "replayed" if result.cached else "computed")

        def _mutate(record: Dict[str, Any]) -> Dict[str, Any]:
            if record["state"] == JOB_QUEUED:
                record["state"] = JOB_RUNNING
                record["started_at"] = _now()
            if status == "failed":
                record["failed_cells"] += 1
                # Keep the first failure's traceback; later ones only
                # bump the counter.
                if record.get("error") is None:
                    record["error"] = (f"cell {index} "
                                       f"({cell.label()}): {error_text}")
            else:
                record[status] += 1
            return record

        self.store.update_job(active.id, _mutate)
        with active.lock:
            if result is not None:
                active.rows[index] = result.row()
            else:
                active.failed = True
            active.events.append({
                "seq": len(active.events),
                "index": index,
                "status": status,
                "scenario": cell.scenario,
                "label": cell.label(),
                "fingerprint": active.fingerprints[index],
            })
            active.remaining -= 1
            settled = active.remaining == 0
        with self._condition:
            self._condition.notify_all()
        if settled:
            self._finalize(active)

    def _finalize(self, active: _ActiveJob) -> None:
        """Last cell settled: write the sweep record (full expansion,
        rows in order, failed cells as holes) and close the job out."""
        with active.lock:
            rows = list(active.rows)
            failed = active.failed
        self.store.record_sweep(
            active.spec.name, active.spec.description,
            list(active.fingerprints),
            complete=not failed, rows=rows)

        def _mutate(record: Dict[str, Any]) -> Dict[str, Any]:
            record["state"] = JOB_FAILED if failed else JOB_DONE
            record["finished_at"] = _now()
            if record.get("started_at") is None:
                record["started_at"] = record["finished_at"]
            return record

        self.store.update_job(active.id, _mutate)
        with self._condition:
            self._active.pop(active.id, None)
            with active.lock:
                self._finished_events[active.id] = list(active.events)
            while len(self._finished_events) > self._finished_cap:
                self._finished_events.popitem(last=False)
            self._condition.notify_all()

    # -- lifecycle ----------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and stop the workers.  ``wait=True``
        drains already-queued cells first (every accepted job still
        settles); ``wait=False`` abandons the queue — unfinished jobs
        stay ``running`` in the store with their cells' partial results
        recorded, and a resubmission replays the finished cells."""
        with self._condition:
            if self._closed:
                return
            self._closed = True
        if wait:
            for _ in self._threads:
                self._tasks.put(None)
            for thread in self._threads:
                thread.join()
        else:
            # Drain whatever is queued, then poison.
            try:
                while True:
                    self._tasks.get_nowait()
            except queue.Empty:
                pass
            for _ in self._threads:
                self._tasks.put(None)

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
