"""The experiment service: sweeps as a long-running multi-tenant API.

Three pieces over one concurrency-safe
:class:`~repro.harness.store.ExperimentStore`:

- :mod:`repro.harness.service.queue` — a durable job queue and a
  persistent worker pool: submitted sweeps expand to cells, cells fan
  out to workers, results record to the store as each cell finishes,
  and per-job progress counters live in the store's ``jobs`` namespace;
- :mod:`repro.harness.service.app` — the stdlib-only HTTP API
  (``python -m repro serve``): submit sweeps, poll job status, stream
  progress, fetch sweep rows and byte-identical artifacts, and read the
  results book as live HTML;
- :mod:`repro.harness.service.client` — the small urllib client behind
  ``python -m repro submit`` / ``python -m repro status``.

See ``docs/RESULTS.md`` ("The experiment service") for the full tour.
"""

from repro.harness.service.client import ServiceClient, ServiceError
from repro.harness.service.queue import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    ExperimentService,
)

__all__ = [
    "ExperimentService",
    "ServiceClient",
    "ServiceError",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
]
