"""The experiment service's HTTP API (stdlib only).

A :class:`ThreadingHTTPServer` — one thread per request, no third-party
dependencies — in front of an
:class:`~repro.harness.service.queue.ExperimentService` and its store.
Start it with ``python -m repro serve``.  Routes:

===========================================  ================================
``POST /api/sweeps``                         submit a sweep: JSON body
                                             ``{"sweep": name,
                                             "share_lottery"?, "network"?,
                                             "topology"?}`` → 202 + job
``GET  /api/sweeps``                         submittable sweeps + recorded
                                             sweep names
``GET  /api/sweeps/<name>/rows``             recorded rows of one sweep
``GET  /api/sweeps/<name>/artifact.json``    the sweep's JSON artifact —
                                             byte-identical to a direct
                                             ``run_sweep(store=...)`` export
``GET  /api/sweeps/<name>/artifact.csv``     likewise, CSV
``GET  /api/jobs``                           all job records, newest first
``GET  /api/jobs/<id>``                      one job record
``GET  /api/jobs/<id>/events``               per-cell progress; ``?since=N``
                                             offsets, ``?timeout=S`` long-
                                             polls until a new event
``GET  /api/jobs/<id>/stream``               chunked NDJSON progress stream:
                                             one event per line until the
                                             job settles
``GET  /``, ``GET /book``                    the results book as live HTML
                                             (re-rendered per request,
                                             auto-refreshing)
``GET  /book.md``                            the same book as Markdown
``GET  /healthz``                            liveness probe
===========================================  ================================

Errors are JSON: ``{"error": message}`` with a 4xx/5xx status.  The
server binds to 127.0.0.1 by default — it trusts its callers (any
client that can reach it may submit compute); put it behind real
authentication before exposing it further.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigurationError
from repro.harness.report import render_book
from repro.harness.scenarios import sweep_csv_text, sweep_json_text
from repro.harness.service.queue import (
    JOB_DONE,
    JOB_FAILED,
    ExperimentService,
)

#: Book HTML auto-refresh period, seconds (the "live" in live HTML).
BOOK_REFRESH_SECONDS = 5

_JOB_ROUTE = re.compile(r"^/api/jobs/(?P<job>[^/]+)"
                        r"(?P<tail>/events|/stream)?$")
_SWEEP_ROUTE = re.compile(r"^/api/sweeps/(?P<name>[^/]+)"
                          r"(?P<tail>/rows|/artifact\.json|/artifact\.csv)$")

#: Longest long-poll a single request may hold (seconds); clients ask
#: for less via ``?timeout=``.
MAX_POLL_SECONDS = 60.0


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the service bound on the server object."""

    server_version = "repro-experiment-service/1.0"
    protocol_version = "HTTP/1.1"

    # The bound service/store, set by make_server().
    service: ExperimentService = None  # type: ignore[assignment]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing -----------------------------------------------------------
    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n"
                ).encode("utf-8")
        self._send(status, body, "application/json; charset=utf-8")

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _query(self) -> Dict[str, str]:
        parsed = parse_qs(urlsplit(self.path).query)
        return {key: values[-1] for key, values in parsed.items()}

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- dispatch -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = urlsplit(self.path).path
        try:
            if path in ("/", "/book", "/book.html"):
                return self._get_book(fmt="html")
            if path == "/book.md":
                return self._get_book(fmt="md")
            if path == "/healthz":
                return self._send_json(200, {"status": "ok"})
            if path == "/api/sweeps":
                return self._get_sweeps()
            if path == "/api/jobs":
                return self._send_json(
                    200, {"jobs": self.service.jobs()})
            match = _JOB_ROUTE.match(path)
            if match is not None:
                job_id, tail = match.group("job"), match.group("tail")
                if tail == "/events":
                    return self._get_events(job_id)
                if tail == "/stream":
                    return self._stream_events(job_id)
                return self._get_job(job_id)
            match = _SWEEP_ROUTE.match(path)
            if match is not None:
                return self._get_sweep_data(match.group("name"),
                                            match.group("tail"))
            self._error(404, f"no route for {path}")
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to salvage
        except Exception as error:  # surface, don't kill the thread
            self._error(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = urlsplit(self.path).path
        try:
            if path == "/api/sweeps":
                return self._post_sweep()
            self._error(404, f"no route for {path}")
        except BrokenPipeError:
            pass
        except Exception as error:
            self._error(500, f"{type(error).__name__}: {error}")

    # -- handlers -----------------------------------------------------------
    def _post_sweep(self) -> None:
        payload = self._read_body()
        if payload is None or not isinstance(payload.get("sweep"), str):
            return self._error(
                400, 'body must be a JSON object with a "sweep" name')
        try:
            job_id = self.service.submit(
                payload["sweep"],
                share_lottery=bool(payload.get("share_lottery", True)),
                network=payload.get("network"),
                topology=payload.get("topology"))
        except ConfigurationError as error:
            return self._error(400, str(error))
        record = self.service.job(job_id)
        self._send_json(202, {"job": job_id, "record": record})

    def _get_sweeps(self) -> None:
        self._send_json(200, {
            "available": self.service.available_sweeps(),
            "recorded": self.service.store.sweep_names(),
        })

    def _get_job(self, job_id: str) -> None:
        record = self.service.job(job_id)
        if record is None:
            return self._error(404, f"unknown job {job_id!r}")
        self._send_json(200, record)

    def _get_events(self, job_id: str) -> None:
        record = self.service.job(job_id)
        if record is None:
            return self._error(404, f"unknown job {job_id!r}")
        query = self._query()
        try:
            since = int(query.get("since", "0"))
            timeout = min(float(query.get("timeout", "0")),
                          MAX_POLL_SECONDS)
        except ValueError:
            return self._error(400, "since/timeout must be numbers")
        events = self.service.events(
            job_id, since=since, timeout=timeout if timeout > 0 else None)
        self._send_json(200, {
            "job": self.service.job(job_id),
            "events": events,
            "next": since + len(events),
        })

    def _stream_events(self, job_id: str) -> None:
        """Chunked NDJSON: one progress event per line, then a final
        ``{"job": <record>}`` line once the job settles."""
        record = self.service.job(job_id)
        if record is None:
            return self._error(404, f"unknown job {job_id!r}")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def chunk(line: str) -> None:
            data = (line + "\n").encode("utf-8")
            self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
            self.wfile.write(data + b"\r\n")
            self.wfile.flush()

        seen = 0
        while True:
            events = self.service.events(job_id, since=seen, timeout=5.0)
            for event in events:
                chunk(json.dumps(event, sort_keys=True))
            seen += len(events)
            record = self.service.job(job_id)
            if record is None or record["state"] in (JOB_DONE, JOB_FAILED):
                if not events:  # drain any tail written after settle
                    break
        chunk(json.dumps({"job": record}, sort_keys=True))
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    def _get_sweep_data(self, name: str, tail: str) -> None:
        store = self.service.store
        record = store.load_sweep(name)
        if record is None:
            return self._error(404, f"no recorded sweep {name!r}")
        rows = store.sweep_rows(name)
        if tail == "/rows":
            return self._send_json(200, {
                "sweep": name,
                "complete": all(
                    row is not None
                    for row in store.sweep_rows_aligned(name,
                                                        record=record)),
                "rows": rows,
            })
        if tail == "/artifact.json":
            body = sweep_json_text(name, rows).encode("utf-8")
            return self._send(200, body,
                              "application/json; charset=utf-8")
        body = sweep_csv_text(rows).encode("utf-8")
        self._send(200, body, "text/csv; charset=utf-8")

    def _get_book(self, fmt: str) -> None:
        document, _ = render_book(self.service.store, fmt=fmt,
                                  live_refresh=(BOOK_REFRESH_SECONDS
                                                if fmt == "html" else None))
        if fmt == "html":
            self._send(200, document.encode("utf-8"),
                       "text/html; charset=utf-8")
        else:
            self._send(200, document.encode("utf-8"),
                       "text/markdown; charset=utf-8")


def make_server(store, host: str = "127.0.0.1", port: int = 8765,
                workers: int = 2, verbose: bool = False,
                ) -> Tuple[ThreadingHTTPServer, ExperimentService]:
    """Build the threaded HTTP server and its worker-pool service.

    Returns ``(server, service)`` without starting either loop —
    callers (the CLI, tests) drive ``serve_forever`` themselves and must
    ``service.shutdown()`` after ``server.shutdown()``.  ``port=0``
    binds an ephemeral port (read it back from
    ``server.server_address``).
    """
    service = ExperimentService(store, workers=workers)
    handler = type("BoundServiceHandler", (ServiceHandler,),
                   {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    server.verbose = verbose
    return server, service


def serve(store, host: str = "127.0.0.1", port: int = 8765,
          workers: int = 2, verbose: bool = True) -> None:
    """Blocking entry point behind ``python -m repro serve``."""
    server, service = make_server(store, host=host, port=port,
                                  workers=workers, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"experiment service on http://{bound_host}:{bound_port} "
          f"(store {store.root}, backend {store.backend.kind}, "
          f"{workers} workers) — Ctrl-C to stop", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()
