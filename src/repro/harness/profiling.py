"""Shared instrumentation for the perf trajectory.

Both the CI perf-smoke budget (tests/test_perf_smoke.py) and the recorded
benchmark snapshot (scripts/record_bench.py) must count the *same*
quantity, or a change to how verification work is measured would silently
let them drift apart — so the counting harness lives here, once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.harness.runner import run_instance
from repro.protocols.base import ProtocolInstance
from repro.sim.result import ExecutionResult


@dataclass
class CheckCallProfile:
    """One instrumented execution: its result, wall time, and how many
    times ``authenticator.check`` ran."""

    result: ExecutionResult
    wall_seconds: float
    check_calls: int


def profile_check_calls(instance: ProtocolInstance, f: int,
                        seed=0) -> CheckCallProfile:
    """Run ``instance`` counting ``authenticator.check`` invocations.

    The instance's authenticator (from ``services['authenticator']``) is
    wrapped in place; every verification path — node handlers, proposer
    policies, the memoization layer — funnels through it, so the count is
    the execution's total cryptographic verification work.
    """
    authenticator = instance.services["authenticator"]
    calls = [0]
    original = authenticator.check

    def counting(node_id, topic, auth):
        calls[0] += 1
        return original(node_id, topic, auth)

    authenticator.check = counting
    try:
        start = time.perf_counter()
        result = run_instance(instance, f, seed=seed)
        wall = time.perf_counter() - start
    finally:
        del authenticator.check  # restore the bound method
    return CheckCallProfile(result=result, wall_seconds=wall,
                            check_calls=calls[0])
