"""Shared instrumentation for the perf trajectory.

Both the CI perf-smoke budget (tests/test_perf_smoke.py) and the recorded
benchmark snapshot (scripts/record_bench.py) must count the *same*
quantity, or a change to how verification work is measured would silently
let them drift apart — so the counting harness lives here, once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import repro.sim.engine as _engine_mod
import repro.sim.metrics as _metrics_mod
from repro.harness.runner import run_instance
from repro.protocols.base import ProtocolInstance
from repro.sim.conditions import ConditionedNetwork, NetworkConditions
from repro.sim.network import SynchronousNetwork
from repro.sim.result import ExecutionResult
from typing import Optional


@dataclass
class CheckCallProfile:
    """One instrumented execution: its result, wall time, and how many
    times ``authenticator.check`` ran."""

    result: ExecutionResult
    wall_seconds: float
    check_calls: int


def profile_check_calls(instance: ProtocolInstance, f: int,
                        seed=0) -> CheckCallProfile:
    """Run ``instance`` counting ``authenticator.check`` invocations.

    The instance's authenticator (from ``services['authenticator']``) is
    wrapped in place; every verification path — node handlers, proposer
    policies, the memoization layer — funnels through it, so the count is
    the execution's total cryptographic verification work.
    """
    authenticator = instance.services["authenticator"]
    calls = [0]
    original = authenticator.check

    def counting(node_id, topic, auth):
        calls[0] += 1
        return original(node_id, topic, auth)

    authenticator.check = counting
    try:
        start = time.perf_counter()
        result = run_instance(instance, f, seed=seed)
        wall = time.perf_counter() - start
    finally:
        del authenticator.check  # restore the bound method
    return CheckCallProfile(result=result, wall_seconds=wall,
                            check_calls=calls[0])


@dataclass
class PhaseBudget:
    """Wall time of one execution attributed to its hot-path phases.

    The buckets decompose the wall clock:
    ``wall ≈ deliver + scheduler + protocol + verify + sizing + other``.

    - **deliver** — ``SynchronousNetwork.deliver`` proper.  Delivery is
      lazy, so this is the staging-window turnover; the per-node inbox
      materialization runs when the protocol step first reads an inbox
      and lands in *protocol*.
    - **scheduler** — the conditioned network's event-queue machinery
      (``ConditionedNetwork.advance_to``: staging-window drain into the
      timestamp heap, latency/drop coin draws, due-event pops).  Zero
      for unconditioned executions; under the lock-step synchronizer it
      additionally absorbs the per-tick no-op churn the event engine
      skips.
    - **verify** — ``authenticator.check`` (the cryptographic predicate,
      wherever invoked: node handlers, sandboxed corrupt nodes, the
      memoization layer on a miss).
    - **sizing** — ``encoded_size_bits`` as called by metrics recording.
    - **protocol** — the honest round step *exclusive* of verify and
      sizing time accrued inside it.
    - **other** — everything else: engine loop, adversary rushing step,
      RNG derivation, result assembly.
    """

    result: ExecutionResult
    wall_seconds: float
    deliver_seconds: float
    scheduler_seconds: float
    protocol_seconds: float
    verify_seconds: float
    sizing_seconds: float
    other_seconds: float
    check_calls: int

    def budget_dict(self) -> dict:
        """The attribution as a plain dict (for JSON snapshots)."""
        return {
            "wall_seconds": round(self.wall_seconds, 4),
            "deliver_seconds": round(self.deliver_seconds, 4),
            "scheduler_seconds": round(self.scheduler_seconds, 4),
            "protocol_seconds": round(self.protocol_seconds, 4),
            "verify_seconds": round(self.verify_seconds, 4),
            "sizing_seconds": round(self.sizing_seconds, 4),
            "other_seconds": round(self.other_seconds, 4),
            "check_calls": self.check_calls,
        }


def profile_phase_budget(instance: ProtocolInstance, f: int, seed=0,
                         conditions: Optional[NetworkConditions] = None,
                         scheduler: Optional[str] = None) -> PhaseBudget:
    """Run ``instance`` attributing wall time to deliver / scheduler /
    protocol-step / verify / sizing.

    ``conditions``/``scheduler`` run the execution under network
    conditions with an explicit conditioned loop (``"event"`` /
    ``"lockstep"``) — the A/B axis of the event-engine benchmark.

    Instrumentation wraps the five seams the phases flow through:
    ``SynchronousNetwork.deliver`` (class-level — the network is built
    inside the engine), ``ConditionedNetwork.advance_to`` (class-level —
    the event-queue turnover both conditioned loops funnel through),
    ``Simulation._honest_step`` (class-level), the metrics module's
    ``encoded_size_bits`` binding, and the instance's
    ``authenticator.check``.  All wrappers are restored on exit; the
    function is not reentrant (profile one execution at a time).
    Verify/sizing time inside the honest step is subtracted from the
    *protocol* bucket so the buckets stay disjoint; ``ConditionedNetwork``
    overrides ``deliver`` (so conditioned turnover never lands in the
    *deliver* bucket) and the lock-step wrapper's own ``advance_to``
    calls land in *scheduler*, keeping those two disjoint as well.
    """
    state = {"deliver": 0.0, "scheduler": 0.0, "step": 0.0, "verify": 0.0,
             "sizing": 0.0, "nested": 0.0, "in_step": False, "checks": 0}
    perf_counter = time.perf_counter

    orig_deliver = SynchronousNetwork.deliver
    orig_advance = ConditionedNetwork.advance_to
    orig_step = _engine_mod.Simulation._honest_step
    orig_size = _metrics_mod.encoded_size_bits
    authenticator = instance.services["authenticator"]
    orig_check = authenticator.check

    def timed_deliver(self):
        start = perf_counter()
        out = orig_deliver(self)
        state["deliver"] += perf_counter() - start
        return out

    def timed_advance(self, round_index):
        start = perf_counter()
        out = orig_advance(self, round_index)
        state["scheduler"] += perf_counter() - start
        return out

    def timed_step(self, round_index, inboxes):
        start = perf_counter()
        state["in_step"] = True
        try:
            return orig_step(self, round_index, inboxes)
        finally:
            state["in_step"] = False
            state["step"] += perf_counter() - start

    def timed_check(node_id, topic, auth):
        start = perf_counter()
        out = orig_check(node_id, topic, auth)
        elapsed = perf_counter() - start
        state["verify"] += elapsed
        state["checks"] += 1
        if state["in_step"]:
            state["nested"] += elapsed
        return out

    def timed_size(obj):
        start = perf_counter()
        out = orig_size(obj)
        elapsed = perf_counter() - start
        state["sizing"] += elapsed
        if state["in_step"]:
            state["nested"] += elapsed
        return out

    SynchronousNetwork.deliver = timed_deliver
    ConditionedNetwork.advance_to = timed_advance
    _engine_mod.Simulation._honest_step = timed_step
    _metrics_mod.encoded_size_bits = timed_size
    authenticator.check = timed_check
    try:
        start = perf_counter()
        result = run_instance(instance, f, seed=seed,
                              conditions=conditions, scheduler=scheduler)
        wall = perf_counter() - start
    finally:
        SynchronousNetwork.deliver = orig_deliver
        ConditionedNetwork.advance_to = orig_advance
        _engine_mod.Simulation._honest_step = orig_step
        _metrics_mod.encoded_size_bits = orig_size
        del authenticator.check

    protocol = max(0.0, state["step"] - state["nested"])
    other = max(0.0, wall - state["deliver"] - state["scheduler"] - protocol
                - state["verify"] - state["sizing"])
    return PhaseBudget(
        result=result,
        wall_seconds=wall,
        deliver_seconds=state["deliver"],
        scheduler_seconds=state["scheduler"],
        protocol_seconds=protocol,
        verify_seconds=state["verify"],
        sizing_seconds=state["sizing"],
        other_seconds=other,
        check_calls=state["checks"],
    )
