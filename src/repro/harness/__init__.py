"""Experiment harness: runners, the scenario-matrix sweep layer, the
persistent experiment store / results book, and the experiment tables
(E1–E12)."""

from repro.harness.report import render_book, write_book
from repro.harness.runner import run_instance, run_trials, TrialStats
from repro.harness.scenarios import (
    CachedCellPayload,
    Cell,
    CellResult,
    ScenarioSpec,
    SweepResult,
    SweepSpec,
    run_sweep,
)
from repro.harness.store import (
    STORE_SALT,
    ExperimentStore,
    cell_fingerprint,
    parse_shard,
)
from repro.harness.tables import Table, rows_to_table

__all__ = [
    "run_instance",
    "run_trials",
    "TrialStats",
    "Table",
    "rows_to_table",
    "CachedCellPayload",
    "Cell",
    "CellResult",
    "ScenarioSpec",
    "SweepResult",
    "SweepSpec",
    "run_sweep",
    "STORE_SALT",
    "ExperimentStore",
    "cell_fingerprint",
    "parse_shard",
    "render_book",
    "write_book",
]
