"""Experiment harness: runners, the scenario-matrix sweep layer, and the
experiment tables (E1–E12)."""

from repro.harness.runner import run_instance, run_trials, TrialStats
from repro.harness.scenarios import (
    Cell,
    CellResult,
    ScenarioSpec,
    SweepResult,
    SweepSpec,
    run_sweep,
)
from repro.harness.tables import Table

__all__ = [
    "run_instance",
    "run_trials",
    "TrialStats",
    "Table",
    "Cell",
    "CellResult",
    "ScenarioSpec",
    "SweepResult",
    "SweepSpec",
    "run_sweep",
]
