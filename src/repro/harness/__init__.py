"""Experiment harness: runners, sweeps, experiment tables (E1–E10)."""

from repro.harness.runner import run_instance, run_trials, TrialStats
from repro.harness.tables import Table

__all__ = ["run_instance", "run_trials", "TrialStats", "Table"]
