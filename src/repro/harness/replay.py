"""Round-by-round execution narratives.

Turns an :class:`~repro.sim.result.ExecutionResult` transcript into a
human-readable account of the execution — which phase each round was,
who proposed what, how many votes/commits each bit collected, when nodes
decided — the first thing one wants when debugging a consensus run.

    >>> print(narrate(result))            # doctest: +SKIP
    round  2 [iter 2 Status ]  12 multicasts
    round  3 [iter 2 Propose]  proposal: node 17 -> bit 1 (cert rank 1)
    round  4 [iter 2 Vote   ]  votes: bit1=14
    round  5 [iter 2 Commit ]  commits: bit1=13
    ...
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List

from repro.protocols.aba import schedule
from repro.protocols.certificates import rank
from repro.protocols.messages import (
    AckMsg,
    CommitMsg,
    PhaseKingProposeMsg,
    ProposeMsg,
    StatusMsg,
    TerminateMsg,
    VoteMsg,
)
from repro.sim.result import ExecutionResult


def _round_events(result: ExecutionResult) -> Dict[int, List]:
    events: Dict[int, List] = defaultdict(list)
    for envelope in result.require_transcript():
        events[envelope.round_sent].append(envelope)
    return events


def _describe_round(round_index: int, envelopes, aba: bool) -> str:
    parts: List[str] = []
    proposals = []
    votes = Counter()
    commits = Counter()
    terminates = Counter()
    acks = Counter()
    statuses = 0
    for envelope in envelopes:
        payload = envelope.payload
        if isinstance(payload, ProposeMsg):
            proposals.append(payload)
        elif isinstance(payload, VoteMsg):
            votes[payload.bit] += 1
        elif isinstance(payload, CommitMsg):
            commits[payload.bit] += 1
        elif isinstance(payload, TerminateMsg):
            terminates[payload.bit] += 1
        elif isinstance(payload, StatusMsg):
            statuses += 1
        elif isinstance(payload, (AckMsg, PhaseKingProposeMsg)):
            bit = payload.bit
            acks[bit] += 1
    if statuses:
        parts.append(f"{statuses} status")
    for proposal in proposals:
        parts.append(f"proposal: node {proposal.sender} -> bit "
                     f"{proposal.bit} (cert rank "
                     f"{rank(proposal.certificate)})")
    if votes:
        parts.append("votes: " + " ".join(
            f"bit{bit}={count}" for bit, count in sorted(votes.items())))
    if commits:
        parts.append("commits: " + " ".join(
            f"bit{bit}={count}" for bit, count in sorted(commits.items())))
    if terminates:
        parts.append("terminate: " + " ".join(
            f"bit{bit}={count}" for bit, count in sorted(terminates.items())))
    if acks:
        parts.append("acks/proposes: " + " ".join(
            f"bit{bit}={count}" for bit, count in sorted(acks.items())))
    if not parts:
        parts.append(f"{len(envelopes)} messages")
    if aba:
        iteration, phase = schedule(round_index)
        prefix = f"round {round_index:3d} [iter {iteration} {phase:<7s}]  "
    else:
        prefix = f"round {round_index:3d}  "
    return prefix + "; ".join(parts)


def narrate(result: ExecutionResult, aba: bool = True,
            max_rounds: int = 200) -> str:
    """A round-by-round narrative of one execution's transcript.

    ``aba=True`` annotates rounds with the iterated-BA phase schedule;
    pass ``False`` for phase-king / broadcast transcripts.
    """
    events = _round_events(result)
    lines: List[str] = []
    for round_index in sorted(events)[:max_rounds]:
        lines.append(_describe_round(round_index, events[round_index], aba))
    decisions = Counter()
    for node, decided in sorted(result.decided_rounds.items()):
        if decided is not None:
            decisions[decided] += 1
    for round_index, count in sorted(decisions.items()):
        lines.append(f"round {round_index:3d}  {count} nodes decided")
    lines.append(
        f"outcome: consistent={result.consistent()} "
        f"outputs={sorted(set(result.honest_outputs))} "
        f"corruptions={result.corruptions_used}/{result.corruption_budget}")
    return "\n".join(lines)
