"""Persistent, content-addressed experiment store for sweep results.

Every :func:`~repro.harness.scenarios.run_sweep` invocation used to
recompute all of its cells from scratch; this module makes sweeps
*incremental*.  A :class:`ExperimentStore` is an on-disk map from a
**cell fingerprint** — a SHA-256 over the canonical JSON encoding of
everything that determines a cell's results — to that cell's recorded
metrics row.  ``run_sweep(store=...)`` consults the store before
executing a cell and replays recorded cells byte-identically (the same
``rows()``, tables, and CSV/JSON artifacts as a fresh run), which buys:

- **resume**: an interrupted sweep re-run against the same store only
  computes the missing cells (``python -m repro sweep NAME --resume``);
- **sharding**: ``--shard K/M`` splits a sweep's cells across M
  invocations (machines) by cell index; each shard writes its cells to
  the shared store, and a final run replays the union;
- **incremental grids**: growing a sweep's axis by one value costs only
  the new cells.

Fingerprint scheme
------------------
:func:`canonical_cell_key` flattens a bound
:class:`~repro.harness.scenarios.Cell` into a canonical JSON document:
the executor and protocol registry keys, the adversary key and its
kwargs, the resolved builder kwargs (inputs, ``SecurityParameters``,
epochs, ...), the seeds, the fully resolved
:class:`~repro.sim.conditions.NetworkConditions` (including any
:class:`~repro.sim.conditions.LinkTopology`), the shared-lottery flag,
and the :data:`STORE_SALT` code-version salt.  Dataclasses encode as
``{"__dataclass__": qualified-name, "fields": {...}}`` and callables
(e.g. a ``ba_builder``) as their qualified name, so the key is stable
across processes and Python versions.  Scenario *names* and display
labels are deliberately excluded: they decorate rows at replay time but
never influence execution.

Two knobs that provably do **not** affect results are handled
asymmetrically:

- ``workers`` is excluded: worker-count independence is pinned by the
  determinism suite (results are aggregated in seed order).
- ``share_lottery`` is *included*, conservatively: the lottery cache is
  differentially tested to be sound, but it sits upstream of every coin
  flip, so the store refuses to let a future cache bug silently poison
  recorded results.  ``--no-shared-lottery`` therefore keys separate
  cells.

Invalidation
------------
Anything the key covers invalidates naturally (a changed binding, seed,
network, or topology is a different fingerprint).  Changes the key
*cannot* see — protocol/engine semantics, metric definitions, a registry
key rebound to a different builder — must bump :data:`STORE_SALT`, which
participates in every fingerprint and so invalidates the entire store at
once.  See ``docs/RESULTS.md`` for the full rules.

Stored records keep **metrics only** (the scalar row a sweep artifact
serializes); transcripts and :class:`~repro.harness.runner.TrialStats`
payloads are not retained, and replayed cells refuse payload access the
same way metrics-only transcripts refuse replay (see
:class:`~repro.harness.scenarios.CachedCellPayload`).

Backends
--------
The store's records live behind a pluggable
:class:`~repro.harness.backends.StoreBackend`: the default JSON tree
(one file per record) or a concurrency-safe SQLite (WAL) database —
selected by the store path (``*.sqlite``/``*.db`` ⇒ SQLite) or an
explicit ``backend=`` argument.  The fingerprint scheme, schemas, and
replay semantics are backend-independent, and the same cells recorded
through either backend produce byte-identical sweep rows.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.harness.backends import StoreBackend, backend_for_path

#: Code-version salt folded into every fingerprint.  Bump this string
#: whenever a change alters execution results or metric definitions
#: without changing any cell binding (protocol/engine semantics, the
#: metrics schema, rebinding a registry key to a different builder) —
#: every record in every store is invalidated at once.
STORE_SALT = "ba-repro-store-v4"  # v4: the adaptive family's rows
#                                   gained mean_words/mean_actual_faults/
#                                   mean_escalations columns, so v3
#                                   records must miss.
#                                   (v3: the leader family's view-based
#                                   rows gained mean_views_executed/
#                                   mean_view_changes columns, so v2
#                                   records must miss.)
#                                   (v2: event engine; conditioned cells
#                                   gained skipped_ticks/events_processed
#                                   columns, so v1 records must miss.)

#: On-disk record schema version (independent of the salt: a schema
#: bump changes how records are *read*, a salt bump what they *mean*).
STORE_SCHEMA = 1

#: Default store directory used by ``--resume`` and ``python -m repro
#: report`` when no ``--store`` is given (relative to the CWD).
DEFAULT_STORE_DIR = ".repro-store"


# ---------------------------------------------------------------------------
# Canonical encoding and fingerprints.
# ---------------------------------------------------------------------------


def _canon(value: Any) -> Any:
    """Recursively flatten ``value`` into canonical JSON-able form.

    Handles everything a bound cell can carry: scalars, tuples/lists,
    mappings, frozen dataclasses (``NetworkConditions``, ``Partition``,
    ``LinkTopology``, ``SecurityParameters``), bytes, sets, and
    module-level callables (a resolved ``ba_builder``).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {f.name: _canon(getattr(value, f.name))
                       for f in dataclasses.fields(value)},
        }
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    if isinstance(value, (set, frozenset)):
        # Sets are unordered, so the canonical form must impose one —
        # but sorting the *canonical forms* directly would crash on
        # heterogeneous elements (frozenset({1, "a"})) and on elements
        # whose canonical form is a dict (a frozen dataclass).  Sort by
        # each element's canonical JSON encoding instead: total, stable
        # across processes, and injective exactly where the fingerprint
        # needs it (equal encodings ⇒ equal canonical forms).
        items = [_canon(item) for item in value]
        try:
            return sorted(
                items,
                key=lambda item: json.dumps(item, sort_keys=True,
                                            separators=(",", ":")))
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"cannot order the elements of {value!r} for a cell "
                f"fingerprint: {error}") from None
    if isinstance(value, dict):
        return {str(key): _canon(item) for key, item in value.items()}
    if callable(value):
        qualname = getattr(value, "__qualname__", "")
        if not qualname or "<locals>" in qualname or "<lambda>" in qualname:
            # A lambda/closure's qualified name does not identify its
            # behavior (two closures from one factory share it), so
            # fingerprinting it would let different cells collide.
            raise ConfigurationError(
                f"cannot fingerprint non-module-level callable "
                f"{value!r}; use a module-level function")
        return {"__callable__": f"{value.__module__}.{qualname}"}
    raise ConfigurationError(
        f"cannot canonicalize {value!r} ({type(value).__name__}) for a "
        "cell fingerprint; use a scalar, tuple, dataclass, or "
        "module-level callable")


def canonical_cell_key(cell, share_lottery: bool = True,
                       salt: str = STORE_SALT) -> Dict[str, Any]:
    """The canonical key document for one bound cell.

    Covers everything that determines the cell's metrics; excludes
    display-only fields (scenario name, binding labels) and the worker
    count (seed-order aggregation is worker-independent, pinned by
    tests).  ``share_lottery`` is included conservatively — see the
    module docstring.
    """
    return {
        "schema": STORE_SCHEMA,
        "salt": salt,
        "executor": cell.executor,
        "protocol": cell.protocol,
        "adversary": cell.adversary,
        "adversary_kwargs": _canon(dict(cell.adversary_kwargs)),
        "n": cell.n,
        "f": cell.f,
        "seeds": _canon(cell.seeds),
        "network": _canon(cell.network),
        "kwargs": _canon(dict(cell.kwargs)),
        "share_lottery": bool(share_lottery),
    }


def cell_fingerprint(cell, share_lottery: bool = True,
                     salt: str = STORE_SALT) -> str:
    """SHA-256 hex digest of the canonical cell key."""
    key = canonical_cell_key(cell, share_lottery=share_lottery, salt=salt)
    encoded = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``K/M`` shard selector into a validated ``(k, m)`` pair.

    ``K`` is 1-based: ``--shard 2/4`` executes cells whose expansion
    index ``i`` satisfies ``i % 4 == 1``.
    """
    try:
        k_text, m_text = text.split("/", 1)
        k, m = int(k_text), int(m_text)
    except ValueError:
        raise ConfigurationError(
            f"shard must look like K/M (e.g. 2/4), got {text!r}") from None
    if m < 1 or not 1 <= k <= m:
        raise ConfigurationError(
            f"shard K/M needs 1 <= K <= M, got {text!r}")
    return k, m


# ---------------------------------------------------------------------------
# The on-disk store.
# ---------------------------------------------------------------------------


class ExperimentStore:
    """Content-addressed store of executed cells, sweeps, and jobs.

    The store owns the record semantics (fingerprints, schemas, replay
    rules); the *bytes* live behind a pluggable
    :class:`~repro.harness.backends.StoreBackend`:

    - the default **JSON tree** (``cells/<fp[:2]>/<fp>.json``,
      ``sweeps/<name>.json``, ``jobs/<id>.json``) — human-readable,
      atomic via temp-file + rename, ideal for one invocation that owns
      its store directory;
    - **SQLite (WAL mode)** — one database file with ``cells``,
      ``sweeps``, and ``jobs`` tables, safe for many concurrent readers
      and writers across threads and processes; what the experiment
      service runs on.  Selected by pointing ``root`` at a
      ``*.sqlite``/``*.db`` path (or passing ``backend="sqlite"``).

    Cell records are content-addressed (keyed by fingerprint) and carry
    no timestamps, so the cell namespace populated twice from the same
    code and specs is byte-identical (sweep records do carry a
    ``recorded_at`` timestamp).  Writes are atomic in every backend, so
    an interrupted sweep never leaves a truncated record — the next
    ``--resume`` simply recomputes the missing cells.

    Sweep records always list the sweep's **full** cell-fingerprint
    expansion (including cells a ``--shard`` run skipped), so concurrent
    shard invocations against one shared store write equivalent records
    and the results book can section the whole sweep as soon as the
    cell records exist, whichever shard finished last.
    """

    SCHEMA = STORE_SCHEMA

    def __init__(self, root, salt: str = STORE_SALT,
                 backend: Optional[Any] = None) -> None:
        self.root = Path(root)
        self.salt = salt
        if isinstance(backend, StoreBackend):
            self.backend = backend
        else:
            self.backend = backend_for_path(self.root, backend)

    def close(self) -> None:
        self.backend.close()

    # -- fingerprints -------------------------------------------------------
    def fingerprint(self, cell, share_lottery: bool = True) -> str:
        return cell_fingerprint(cell, share_lottery=share_lottery,
                                salt=self.salt)

    # -- cell records -------------------------------------------------------
    def load_record(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The record for one fingerprint, or None on a cache miss.

        Records whose schema does not match — or that are truncated,
        corrupted, or missing their metrics — are treated as misses (a
        schema bump or a damaged file re-records rather than mis-reads
        or crashes a resume).
        """
        record = self.backend.load_cell(fingerprint)
        if (record is None or record.get("schema") != self.SCHEMA
                or not isinstance(record.get("metrics"), dict)):
            return None
        return record

    def save_result(self, fingerprint: str, sweep_name: str, result,
                    share_lottery: bool = True) -> Dict[str, Any]:
        """Record one executed :class:`CellResult` under its fingerprint.

        Stores the scalar ``metrics`` (what replay rehydrates) and the
        composed ``row`` (what the results book renders without needing
        the live spec), plus the canonical key for debuggability.
        """
        cell = result.cell
        record = {
            "schema": self.SCHEMA,
            "fingerprint": fingerprint,
            "sweep": sweep_name,
            "scenario": cell.scenario,
            "label": cell.label(),
            "key": canonical_cell_key(cell, share_lottery=share_lottery,
                                      salt=self.salt),
            "metrics": dict(result.metrics),
            "row": result.row(),
        }
        self.backend.save_cell(fingerprint, record)
        return record

    def cell_count(self) -> int:
        return self.backend.cell_count()

    # -- sweep records ------------------------------------------------------
    def record_sweep(self, name: str, description: str,
                     fingerprints: List[str], complete: bool,
                     rows: Optional[List[Optional[Dict[str, Any]]]] = None,
                     ) -> None:
        """Record one run of a sweep: its full cell expansion, in order.

        ``rows`` is the per-cell display-row list, aligned with
        ``fingerprints`` (``None`` for cells this run skipped).  Display
        rows live here — per sweep run — rather than only in the
        content-addressed cell records, because two cells with different
        labels can share one fingerprint (scenario names are outside the
        key); the cell record's row is just a fallback for holes.

        ``complete=False`` marks a shard run that skipped cells not yet
        in the store; the results book labels such sections as partial
        (and re-derives completeness from row availability, so a later
        shard filling in the cells heals the section automatically).

        The record reflects the *last* run of the sweep name: a run with
        force-overridden bindings (``--network``/``--topology``/
        ``--no-shared-lottery``) addresses different cells and so
        replaces the section with that variant (both variants' cell
        records persist; re-run without the override to switch back).
        """
        self.backend.save_sweep(name, {
            "schema": self.SCHEMA,
            "sweep": name,
            "description": description,
            "salt": self.salt,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                         time.gmtime()),
            "complete": complete,
            "cells": list(fingerprints),
            "rows": list(rows) if rows is not None
            else [None] * len(fingerprints),
        })

    def load_sweep(self, name: str) -> Optional[Dict[str, Any]]:
        record = self.backend.load_sweep(name)
        if (record is None or record.get("schema") != self.SCHEMA
                or not isinstance(record.get("cells"), list)):
            return None
        return record

    def sweep_names(self) -> List[str]:
        return self.backend.sweep_names()

    def sweep_rows_aligned(self, name: str,
                           record: Optional[Dict[str, Any]] = None,
                           ) -> List[Optional[Dict[str, Any]]]:
        """Per-cell display rows of one sweep, aligned with its recorded
        cell expansion (``None`` where no row is available).

        Prefers the sweep record's own rows (which carry each cell's
        run-time labels, and which the last run of the sweep refreshed);
        holes — e.g. cells another concurrent shard computed — fall back
        to the cell record's row.  Pass an already-loaded ``record`` to
        skip re-reading the sweep file.
        """
        if record is None:
            record = self.load_sweep(name)
        if record is None:
            return []
        stored = record.get("rows") or []
        if len(stored) < len(record["cells"]):
            # A hand-edited or partially written record may carry fewer
            # rows than cells; pad rather than letting zip() silently
            # truncate, so tail cells keep their cell-record fallback.
            stored = list(stored) + \
                [None] * (len(record["cells"]) - len(stored))
        aligned: List[Optional[Dict[str, Any]]] = []
        for fingerprint, row in zip(record["cells"], stored):
            if row is None:
                cell_record = self.load_record(fingerprint)
                row = cell_record["row"] if cell_record else None
            aligned.append(row)
        return aligned

    def sweep_rows(self, name: str) -> List[Dict[str, Any]]:
        """The available rows of one sweep, in execution order (cells
        with no row — skipped by a shard, or pruned by hand — are
        omitted)."""
        return [row for row in self.sweep_rows_aligned(name)
                if row is not None]

    # -- job records (the experiment service's durable queue state) ---------
    def save_job(self, job_id: str, record: Dict[str, Any]) -> None:
        payload = dict(record)
        payload.setdefault("schema", self.SCHEMA)
        self.backend.save_job(job_id, payload)

    def load_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        record = self.backend.load_job(job_id)
        if record is None or record.get("schema") != self.SCHEMA:
            return None
        return record

    def update_job(self, job_id: str,
                   mutate: Callable[[Dict[str, Any]], Dict[str, Any]],
                   ) -> Optional[Dict[str, Any]]:
        """Atomic read-modify-write of one job record (concurrent
        updaters serialize in the backend, so per-job progress counters
        incremented from many workers never lose updates)."""
        return self.backend.update_job(job_id, mutate)

    def job_ids(self) -> List[str]:
        return self.backend.job_ids()
