"""Experiments E1–E12: the executable version of the paper's evaluation.

Each ``experiment_e*`` function runs real protocol executions under real
adversaries and returns an :class:`ExperimentResult` carrying a rendered
table (what the paper's tables/claims look like in this reproduction) and
the raw data dictionary (what the tests and EXPERIMENTS.md assertions are
written against).  DESIGN.md §3 maps each experiment to the paper claim it
reproduces.

Since the scenario-matrix refactor, each experiment is a **thin
declarative spec**: the protocol × adversary × parameter grid lives in a
:class:`~repro.harness.scenarios.SweepSpec` built by an ``_e*_sweep``
function, execution goes through
:func:`~repro.harness.scenarios.run_sweep` (which shares one
eligibility-lottery cache across the sweep's cells), and the experiment
function itself only formats the per-cell results into the paper-shaped
tables.  Outputs are byte-identical to the pre-refactor imperative loops
for the same seeds.  E12's ablations sweep *internal* design parameters
(custom difficulty schedules per seed) that the declarative layer
deliberately does not model, so it stays imperative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.analysis import (
    corrupt_quorum_probability,
    good_iteration_probability,
    honest_quorum_failure_probability,
    mean,
    percentile,
    terminate_propagation_failure,
)
from repro.harness.runner import run_instance, run_trials
from repro.harness.scenarios import (
    ScenarioSpec,
    SweepResult,
    SweepSpec,
    f_half_minus_one,
    inputs_mixed as _mixed_inputs,
    run_sweep,
)
from repro.harness.tables import Table
from repro.rng import derive_rng
from repro.types import SecurityParameters


@dataclass
class ExperimentResult:
    name: str
    tables: List[Table]
    data: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables)


def _one(result: SweepResult, scenario: str):
    """The single cell of a one-cell scenario."""
    cells = result.scenario(scenario)
    assert len(cells) == 1, f"{scenario}: expected one cell, got {len(cells)}"
    return cells[0]


def _binding(cell_result, key: str):
    return dict(cell_result.cell.bindings)[key]


# ---------------------------------------------------------------------------
# E1 — Theorem 1/4: after-the-fact removal breaks subquadratic BB.
# ---------------------------------------------------------------------------

def _e1_sweep(trials: int) -> SweepSpec:
    params = SecurityParameters(lam=20, epsilon=0.1)
    return SweepSpec(
        name="e1-theorem4",
        scenarios=(
            ScenarioSpec(
                name="subquadratic", protocol="broadcast-from-ba",
                executor="theorem4",
                fixed=dict(n=900, f=400, sender_input=1,
                           epsilon=2 * params.epsilon,
                           ba_builder="subquadratic", params=params,
                           max_iterations=12),
                seeds=range(trials)),
            ScenarioSpec(
                name="quadratic", protocol="broadcast-from-ba",
                executor="theorem4",
                fixed=dict(n=41, f=19, sender_input=1,
                           epsilon=2 * params.epsilon,
                           ba_builder="quadratic", max_iterations=12),
                seeds=range(trials)),
            ScenarioSpec(
                name="census", protocol="broadcast-from-ba",
                executor="theorem4-census",
                fixed=dict(n=1600, f=720, sender_input=1, epsilon=0.25,
                           ba_builder="subquadratic",
                           params=SecurityParameters(lam=12, epsilon=0.1),
                           max_iterations=8),
                seeds=range(trials)),
        ),
    )


def experiment_e1(trials: int = 3) -> ExperimentResult:
    """Isolation attack: subquadratic BB falls, quadratic BB survives."""
    sweep = run_sweep(_e1_sweep(trials))
    table = Table(
        "E1 (Theorem 1/4) — strongly adaptive isolation attack",
        ["protocol", "n", "f", "honest msgs", "bound (εf/2)²",
         "corruptions", "budget dead", "violation rate"],
    )
    subq = _one(sweep, "subquadratic").payload
    quad = _one(sweep, "quadratic").payload
    for report in (subq, quad):
        table.add_row(report.protocol, report.n, report.f,
                      round(report.mean_honest_messages),
                      round(report.message_bound),
                      round(report.mean_corruptions, 1),
                      report.budget_exhausted_rate,
                      report.violation_rate)
    # The proof-structure census: the events X and Y of the Theorem 4
    # argument, measured live in the subquadratic regime.
    census = _one(sweep, "census").payload
    census_table = Table(
        "E1b — the Theorem 4 proof events, measured (adversary A)",
        ["quantity", "value"],
    )
    census_table.add_row("E[z] (messages into V)", round(census.mean_z))
    census_table.add_row("Markov budget ε(f/2)²",
                         round(census.markov_budget))
    census_table.add_row("P[X: z under budget]", census.event_x_rate)
    census_table.add_row("P[Y: random p starved]", census.event_y_rate)
    census_table.add_row("P[X ∩ Y]", census.event_xy_rate)
    census_table.add_row("theorem bound 1-2ε", census.theorem_bound)
    return ExperimentResult(
        name="E1", tables=[table, census_table],
        data={"subquadratic": subq, "quadratic": quad, "census": census})


# ---------------------------------------------------------------------------
# E2 — the Dolev–Reischuk warmup.
# ---------------------------------------------------------------------------

_E2_SWEEP = SweepSpec(
    name="e2-dolev-reischuk",
    scenarios=(
        ScenarioSpec(
            name="naive", protocol="naive-broadcast",
            executor="dolev-reischuk",
            fixed=dict(n=40, f=16, sender_input=0), seeds=(1,)),
        ScenarioSpec(
            name="dolev-strong", protocol="dolev-strong",
            executor="dolev-reischuk",
            fixed=dict(n=24, f=10, sender_input=0), seeds=(1,)),
    ),
)


def experiment_e2() -> ExperimentResult:
    """A/A' attack: cheap deterministic BB falls, Dolev–Strong resists."""
    sweep = run_sweep(_E2_SWEEP)
    table = Table(
        "E2 (Section 2 warmup) — Dolev–Reischuk attack",
        ["protocol", "n", "f", "msgs into V", "budget (f/2)²",
         "starved p found", "violation"],
    )
    naive = _one(sweep, "naive").payload
    strong = _one(sweep, "dolev-strong").payload
    for report in (naive, strong):
        table.add_row(report.protocol, report.n, report.f,
                      report.messages_into_v, report.message_budget,
                      report.attack_feasible, report.consistency_violated)
    return ExperimentResult(
        name="E2", tables=[table], data={"naive": naive, "dolev_strong": strong})


# ---------------------------------------------------------------------------
# E3 — Theorem 2/17: multicast complexity independent of n.
# ---------------------------------------------------------------------------

def _e3_sweep(trials: int, sizes: Sequence[int],
              quad_sizes: Sequence[int]) -> SweepSpec:
    return SweepSpec(
        name="e3-multicast-vs-n",
        scenarios=(
            ScenarioSpec(
                name="subquadratic", protocol="subquadratic",
                grid={"n": tuple(sizes)},
                fixed={"f_fraction": 0.3, "lam": 24, "epsilon": 0.15},
                inputs="ones", adversary="crash", seeds=range(trials)),
            ScenarioSpec(
                name="quadratic", protocol="quadratic",
                grid={"n": tuple(quad_sizes)},
                fixed={"f": f_half_minus_one},
                inputs="ones", adversary="crash", seeds=range(trials)),
            ScenarioSpec(
                name="dolev-strong", protocol="dolev-strong",
                grid={"n": tuple(quad_sizes)},
                fixed={"f": f_half_minus_one, "sender_input": 1},
                seeds=range(trials)),
        ),
    )


def experiment_e3(trials: int = 3,
                  sizes: Sequence[int] = (64, 128, 256, 512, 1024),
                  quad_sizes: Sequence[int] = (16, 32, 64, 128),
                  ) -> ExperimentResult:
    """Honest multicasts vs n: flat for subquadratic, linear for quadratic."""
    sweep = run_sweep(_e3_sweep(trials, sizes, quad_sizes))
    table = Table(
        "E3 (Theorem 2) — multicast complexity vs n (unanimous inputs)",
        ["protocol", "n", "f", "multicasts", "multicast kbits",
         "classical msgs"],
    )
    counts: Dict[str, Dict[int, float]] = {}
    for scenario, label in (("subquadratic", "subquadratic-ba"),
                            ("quadratic", "quadratic-ba"),
                            ("dolev-strong", "dolev-strong")):
        counts[scenario] = {}
        for cell in sweep.scenario(scenario):
            stats = cell.stats
            n = cell.cell.n
            counts[scenario][n] = stats.mean_multicasts
            table.add_row(label, n, cell.cell.f,
                          round(stats.mean_multicasts, 1),
                          round(stats.mean_multicast_bits / 1000, 1),
                          round(stats.mean_multicasts * (n - 1)))
    return ExperimentResult(
        name="E3", tables=[table],
        data={"subquadratic": counts["subquadratic"],
              "quadratic": counts["quadratic"],
              "dolev_strong": counts["dolev-strong"],
              "lam": _binding(sweep.scenario("subquadratic")[0], "lam")})


# ---------------------------------------------------------------------------
# E4 — expected constant rounds (Corollary 16 / Lemma 12).
# ---------------------------------------------------------------------------

def _e4_sweep(trials: int) -> SweepSpec:
    return SweepSpec(
        name="e4-round-complexity",
        scenarios=(
            ScenarioSpec(
                name="subquadratic", protocol="subquadratic",
                grid={"n": (100, 200, 400)},
                fixed={"f_fraction": 0.25, "lam": 30, "epsilon": 0.1},
                inputs="mixed", adversary="crash", seeds=range(trials)),
            # Phase-king runs a fixed R = ω(log κ) epochs, no early exit.
            ScenarioSpec(
                name="phase-king", protocol="phase-king-subquadratic",
                fixed={"n": 150, "f": 20, "lam": 30, "epsilon": 0.1,
                       "epochs": 12},
                inputs="mixed", adversary="crash",
                seeds=range(max(4, trials // 2))),
        ),
    )


def experiment_e4(trials: int = 20) -> ExperimentResult:
    """Decision-round distribution: constant for the iterated BA."""
    sweep = run_sweep(_e4_sweep(trials))
    table = Table(
        "E4 (Corollary 16) — termination rounds (mixed inputs, crash faults)",
        ["protocol", "n", "mean rounds", "p90 rounds",
         "good-iter prob (Lemma 12)", "termination rate"],
    )
    data: Dict[str, Any] = {}
    for cell in sweep.scenario("subquadratic"):
        stats = cell.stats
        n = cell.cell.n
        rounds = [float(r.rounds_executed) for r in stats.results]
        table.add_row("subquadratic-ba", n, round(mean(rounds), 1),
                      percentile(rounds, 90),
                      round(good_iteration_probability(n), 4),
                      stats.termination_rate)
        data[f"subq_rounds_n{n}"] = rounds
        data[f"subq_termination_n{n}"] = stats.termination_rate
    king = _one(sweep, "phase-king")
    rounds = [float(r.rounds_executed) for r in king.stats.results]
    table.add_row("phase-king-subq (fixed R)", king.cell.n,
                  round(mean(rounds), 1),
                  percentile(rounds, 90), "-", king.stats.termination_rate)
    data["phase_king_rounds"] = rounds
    return ExperimentResult(name="E4", tables=[table], data=data)


# ---------------------------------------------------------------------------
# E5 — resilience sweep up to (1/2 - ε) n (Theorem 17).
# ---------------------------------------------------------------------------

def _e5_sweep(trials: int, fractions: Sequence[float]) -> SweepSpec:
    return SweepSpec(
        name="e5-resilience",
        scenarios=(
            ScenarioSpec(
                name="subquadratic", protocol="subquadratic",
                grid={"f_fraction": tuple(fractions)},
                fixed={"n": 200, "lam": 40, "epsilon": 0.1},
                inputs="ones", adversary="equivocate", seeds=range(trials)),
        ),
    )


def experiment_e5(trials: int = 6,
                  fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
                  ) -> ExperimentResult:
    """Consistency/validity under the equivocation stress, by corruption
    fraction."""
    sweep = run_sweep(_e5_sweep(trials, fractions))
    table = Table(
        "E5 (Theorem 17) — resilience sweep, static equivocation adversary",
        ["f/n", "f", "consistency", "validity", "termination",
         "mean rounds", "per-topic failure (pred.)"],
    )
    data: Dict[str, Any] = {}
    for cell in sweep.scenario("subquadratic"):
        stats = cell.stats
        n, f = cell.cell.n, cell.cell.f
        lam = _binding(cell, "lam")
        fraction = _binding(cell, "f_fraction")
        # The analytical envelope: the probability that a single topic's
        # committee goes bad (Lemma 11).  The measured rates should track
        # this prediction — near-perfect at small f/n, degrading as f/n
        # approaches 1/2 for a concrete (non-asymptotic) λ.
        predicted = (corrupt_quorum_probability(n, f, lam)
                     + honest_quorum_failure_probability(n, f, lam))
        table.add_row(fraction, f, stats.consistency_rate,
                      stats.validity_rate, stats.termination_rate,
                      round(stats.mean_rounds, 1), round(predicted, 4))
        data[f"fraction_{fraction}"] = {
            "consistency": stats.consistency_rate,
            "validity": stats.validity_rate,
            "termination": stats.termination_rate,
            "predicted_per_topic_failure": predicted,
        }
    return ExperimentResult(name="E5", tables=[table], data=data)


# ---------------------------------------------------------------------------
# E6 — bit-specific vs round-specific eligibility (Remark 3.3).
# ---------------------------------------------------------------------------

def _e6_sweep(trials: int) -> SweepSpec:
    base = {"n": 150, "f": 45, "lam": 30, "epsilon": 0.1, "epochs": 6}
    return SweepSpec(
        name="e6-eligibility-design",
        scenarios=(
            ScenarioSpec(
                name="round-no-erasure", protocol="round-eligibility",
                executor="per-seed",
                fixed={**base, "memory_erasure": False}, inputs="ones",
                adversary="ack-equivocate", adversary_kwargs={"reserve": 60},
                seeds=range(trials)),
            ScenarioSpec(
                name="round-erasure", protocol="round-eligibility",
                executor="per-seed",
                fixed={**base, "memory_erasure": True}, inputs="ones",
                adversary="ack-equivocate", adversary_kwargs={"reserve": 60},
                seeds=range(trials)),
            ScenarioSpec(
                name="bit-specific", protocol="phase-king-subquadratic",
                executor="per-seed", fixed=base, inputs="ones",
                adversary="speaker", seeds=range(trials)),
        ),
    )


def experiment_e6(trials: int = 5) -> ExperimentResult:
    """The equivocation attack across the three designs."""
    sweep = run_sweep(_e6_sweep(trials))
    table = Table(
        "E6 (Remark 3.3) — eligibility design vs same-round equivocation",
        ["design", "erasure", "consistency rate", "forged ACKs/run"],
    )
    data: Dict[str, Any] = {}

    def rates(scenario: str):
        records = _one(sweep, scenario).payload
        rate = sum(result.consistent() for result, _ in records) / trials
        return rate, records

    rate, records = rates("round-no-erasure")
    forged = mean([float(adversary.forged) for _, adversary in records])
    table.add_row("round-specific", False, rate, round(forged, 1))
    data["round_no_erasure"] = rate
    rate, records = rates("round-erasure")
    forged = mean([float(adversary.forged) for _, adversary in records])
    table.add_row("round-specific", True, rate, round(forged, 1))
    data["round_erasure"] = rate
    rate, _records = rates("bit-specific")
    table.add_row("bit-specific (paper)", False, rate, 0)
    data["bit_specific"] = rate
    return ExperimentResult(name="E6", tables=[table], data=data)


# ---------------------------------------------------------------------------
# E7 — Theorem 3: setup assumptions are necessary.
# ---------------------------------------------------------------------------

_E7_SWEEP = SweepSpec(
    name="e7-no-pki",
    scenarios=(
        ScenarioSpec(
            name="shared-ro", executor="hypothetical",
            fixed=dict(n=60, lam=24, epochs=6, setup="shared-ro"),
            seeds=(2,)),
        ScenarioSpec(
            name="pki", executor="hypothetical",
            fixed=dict(n=24, lam=12, epochs=4, setup="pki"),
            seeds=(2,)),
    ),
)


def experiment_e7() -> ExperimentResult:
    """The Q --- 1 --- Q' experiment with and without a PKI."""
    sweep = run_sweep(_E7_SWEEP)
    table = Table(
        "E7 (Theorem 3) — hypothetical experiment Q --- 1 --- Q'",
        ["setup", "n", "Q outputs", "Q' outputs", "bridge", "contradiction",
         "Q' speakers (corruptions)", "bridge rejections"],
    )
    shared = _one(sweep, "shared-ro").payload
    pki = _one(sweep, "pki").payload
    for report in (shared, pki):
        table.add_row(report.setup, report.n,
                      sorted(report.left_outputs),
                      sorted(report.right_outputs),
                      report.bridge_output, report.contradiction,
                      report.right_speakers, report.bridge_rejections)
    return ExperimentResult(
        name="E7", tables=[table], data={"shared": shared, "pki": pki})


# ---------------------------------------------------------------------------
# E8 — the stochastic lemmas (10, 11, 12) vs measurement.
# ---------------------------------------------------------------------------

def _e8_sweep(samples: int) -> SweepSpec:
    return SweepSpec(
        name="e8-committee-census",
        scenarios=(
            ScenarioSpec(
                name="committee", executor="committee-census",
                fixed={"n": 300, "f": 120, "lam": 30, "epsilon": 0.1,
                       "topic": ("Vote", 1, 1)},
                seeds=tuple(("e8", sample) for sample in range(samples))),
        ),
    )


def experiment_e8(samples: int = 400) -> ExperimentResult:
    """Monte-Carlo committee statistics vs the exact/Chernoff predictions."""
    n, f, lam = 300, 120, 30
    census = _one(run_sweep(_e8_sweep(samples)), "committee")
    committee_sizes = [float(size) for size, _corrupt in census.payload]
    corrupt_rate = census.metrics["corrupt_quorum_rate"]
    honest_miss_rate = census.metrics["honest_miss_rate"]

    # The proposer lottery is cheap to sample, so use a larger pool for a
    # tighter Monte-Carlo estimate of Lemma 12's probability.
    proposer_samples = 4 * samples
    good_iterations = 0
    rng = derive_rng("e8-proposer", proposer_samples)
    for sample in range(proposer_samples):
        successes = sum(1 for _ in range(2 * n) if rng.random() < 1 / (2 * n))
        if successes == 1 and rng.random() < 0.5:
            good_iterations += 1

    table = Table(
        "E8 (Lemmas 10-12) — measured vs predicted committee statistics",
        ["quantity", "measured", "predicted"],
    )
    table.add_row("mean committee size", round(mean(committee_sizes), 2), lam)
    table.add_row("P[corrupt quorum ≥ λ/2]", corrupt_rate,
                  round(corrupt_quorum_probability(n, f, lam), 5))
    table.add_row("P[honest quorum < λ/2]", honest_miss_rate,
                  round(honest_quorum_failure_probability(n, f, lam), 5))
    table.add_row("P[good iteration]", good_iterations / proposer_samples,
                  round(good_iteration_probability(n), 4))
    table.add_row("P[Terminate propagation fails | εn/2 done]",
                  "-", terminate_propagation_failure(n, lam, int(0.05 * n)))
    return ExperimentResult(
        name="E8", tables=[table],
        data={
            "mean_committee": mean(committee_sizes),
            "corrupt_quorum_rate": corrupt_rate,
            "corrupt_quorum_pred": corrupt_quorum_probability(n, f, lam),
            "honest_miss_rate": honest_miss_rate,
            "honest_miss_pred": honest_quorum_failure_probability(n, f, lam),
            "good_iteration_rate": good_iterations / proposer_samples,
            "good_iteration_pred": good_iteration_probability(n),
        })


# ---------------------------------------------------------------------------
# E9 — the Section 1 comparison table.
# ---------------------------------------------------------------------------

#: (scenario, display name, tolerates, adaptive-safe, assumptions) — the
#: qualitative columns of the Section 1 comparison, in table order.
_E9_ROWS = (
    ("dolev-strong", "dolev-strong (BB)", "f<n", "yes (quadratic)", "PKI"),
    ("quadratic", "quadratic-ba", "f<n/2", "yes (quadratic)", "PKI"),
    ("static-committee", "static-committee", "static only",
     "NO (E1-style takeover)", "CRS+PKI"),
    ("round-eligibility", "round-eligibility", "f<n/3",
     "only with erasure", "PKI+RO+erasure"),
    ("phase-king-subq", "phase-king-subq (§3.2)", "f<(1/3-ε)n", "yes", "PKI"),
    ("subquadratic", "subquadratic-ba (§C.2)", "f<(1/2-ε)n", "yes", "PKI"),
)


def _e9_sweep(trials: int) -> SweepSpec:
    n = 150
    seeds = range(trials)
    params = {"lam": 30, "epsilon": 0.1}
    return SweepSpec(
        name="e9-comparison",
        scenarios=(
            ScenarioSpec(
                name="dolev-strong", protocol="dolev-strong",
                fixed={"n": n, "f": 30, "sender_input": 1}, seeds=seeds),
            ScenarioSpec(
                name="quadratic", protocol="quadratic",
                fixed={"n": n, "f": f_half_minus_one},
                inputs="mixed", seeds=seeds),
            ScenarioSpec(
                name="static-committee", protocol="static-committee",
                fixed={"n": n, "f": 40}, inputs="ones", seeds=seeds),
            ScenarioSpec(
                name="round-eligibility", protocol="round-eligibility",
                fixed={"n": n, "f": 30, "epochs": 8, **params},
                inputs="ones", seeds=seeds),
            ScenarioSpec(
                name="phase-king-subq", protocol="phase-king-subquadratic",
                fixed={"n": n, "f": 30, "epochs": 8, **params},
                inputs="ones", seeds=seeds),
            ScenarioSpec(
                name="subquadratic", protocol="subquadratic",
                fixed={"n": n, "f": 60, **params},
                inputs="mixed", seeds=seeds),
        ),
    )


def experiment_e9(trials: int = 3) -> ExperimentResult:
    """All protocols, one table: resilience / rounds / multicasts."""
    sweep = run_sweep(_e9_sweep(trials))
    table = Table(
        "E9 (Section 1) — protocol comparison (honest executions, mixed inputs)",
        ["protocol", "tolerates", "adaptive-safe", "rounds",
         "multicasts", "assumptions"],
    )
    data: Dict[str, Any] = {}
    for scenario, name, tolerates, adaptive_safe, assumptions in _E9_ROWS:
        stats = _one(sweep, scenario).stats
        table.add_row(name, tolerates, adaptive_safe,
                      round(stats.mean_rounds, 1),
                      round(stats.mean_multicasts, 1), assumptions)
        data[name] = {"rounds": stats.mean_rounds,
                      "multicasts": stats.mean_multicasts}
    return ExperimentResult(name="E9", tables=[table], data=data)


# ---------------------------------------------------------------------------
# E10 — message size O(λ (log κ + log n)) (Theorem 17).
# ---------------------------------------------------------------------------

def _e10_sweep(trials: int) -> SweepSpec:
    return SweepSpec(
        name="e10-message-size",
        scenarios=(
            ScenarioSpec(
                name="fmine", protocol="subquadratic",
                grid={"lam": (20, 40), "n": (128, 512)},
                fixed={"epsilon": 0.1, "f_fraction": 0.3},
                inputs="ones", seeds=range(trials)),
            ScenarioSpec(
                name="vrf", protocol="subquadratic",
                fixed={"n": 32, "lam": 12, "epsilon": 0.1,
                       "f_fraction": 0.3, "mode": "vrf"},
                inputs="ones", seeds=range(1)),
        ),
    )


def experiment_e10(trials: int = 2) -> ExperimentResult:
    """Max message size vs λ and n, ideal and real-crypto modes."""
    sweep = run_sweep(_e10_sweep(trials))
    table = Table(
        "E10 (Theorem 17) — maximum message size",
        ["mode", "n", "λ", "max message kbits", "multicast kbits total"],
    )
    data: Dict[str, Any] = {}
    for cell in sweep.scenario("fmine"):
        n, lam = cell.cell.n, _binding(cell, "lam")
        max_bits = cell.stats.max_message_bits
        table.add_row("fmine", n, lam, round(max_bits / 1000, 2),
                      round(cell.stats.mean_multicast_bits / 1000, 1))
        data[f"fmine_n{n}_lam{lam}"] = max_bits
    vrf = _one(sweep, "vrf")
    max_bits = vrf.stats.max_message_bits
    table.add_row("vrf (real crypto)", vrf.cell.n, _binding(vrf, "lam"),
                  round(max_bits / 1000, 2),
                  round(vrf.stats.mean_multicast_bits / 1000, 1))
    data["vrf_max_bits"] = max_bits
    return ExperimentResult(name="E10", tables=[table], data=data)


# ---------------------------------------------------------------------------
# E11 — Appendix D/E: the compiled world matches the hybrid world.
# ---------------------------------------------------------------------------

def _e11_sweep(trials: int) -> SweepSpec:
    return SweepSpec(
        name="e11-worlds",
        scenarios=(
            ScenarioSpec(
                name="worlds", protocol="subquadratic",
                grid={"mode": ("fmine", "vrf")},
                fixed={"n": 36, "f": 10, "lam": 12, "epsilon": 0.1},
                inputs="mixed", adversary="equivocate",
                seeds=range(trials)),
        ),
    )


def experiment_e11(trials: int = 3) -> ExperimentResult:
    """Run identical configurations in the Fmine-hybrid and compiled
    (real VRF) worlds and compare every observable the proofs care about.

    Appendix E proves the real world preserves the hybrid world's security
    properties; here both worlds run the same protocol code with only the
    EligibilitySource swapped, so the security predicates and complexity
    shape must match (the exact coins differ — the compiled lottery is the
    VRF's, not Fmine's).
    """
    sweep = run_sweep(_e11_sweep(trials))
    table = Table(
        "E11 (Appendices D/E) — Fmine-hybrid world vs compiled world",
        ["world", "consistency", "validity", "termination",
         "mean multicasts", "mean rounds"],
    )
    data: Dict[str, Any] = {}
    for cell in sweep.scenario("worlds"):
        stats = cell.stats
        mode = _binding(cell, "mode")
        table.add_row(mode, stats.consistency_rate, stats.validity_rate,
                      stats.termination_rate,
                      round(stats.mean_multicasts, 1),
                      round(stats.mean_rounds, 1))
        data[mode] = {
            "consistency": stats.consistency_rate,
            "validity": stats.validity_rate,
            "termination": stats.termination_rate,
            "multicasts": stats.mean_multicasts,
        }
    return ExperimentResult(name="E11", tables=[table], data=data)


# ---------------------------------------------------------------------------
# E12 — ablations of the paper's design choices.
# ---------------------------------------------------------------------------

def experiment_e12(trials: int = 4) -> ExperimentResult:
    """Three ablations of C.2 design choices.

    (a) Leader difficulty: the paper picks 1/2n so that a *unique* honest
        proposer appears with constant probability; sweeping it shows the
        tension (too low: no proposer; too high: conflicting proposers).
    (b) Degenerate difficulty p = 1: the compiled protocol collapses back
        to its quadratic warmup — same agreement, linear speakers.
    (c) Quorum threshold: λ/2 balances safety (corrupt quorum) against
        liveness (honest quorum); the Lemma 11 tails quantify both sides.

    Stays imperative: the ablations sweep *internal* design parameters
    (per-seed custom difficulty schedules, degenerate thresholds) that
    the scenario layer's builder registry deliberately does not model.
    """
    from repro.adversaries import StaticEquivocationAdversary
    from repro.protocols import build_quadratic_ba, build_subquadratic_ba

    data: Dict[str, Any] = {}

    # (a) Leader-difficulty sweep.
    n, f = 200, 50
    lam = 30
    leader_table = Table(
        "E12a — leader difficulty ablation (paper: 1/2n)",
        ["leader probability", "mean rounds", "termination rate"],
    )
    from repro.eligibility.difficulty import DifficultySchedule
    from repro.eligibility.fmine import FMineEligibility

    for factor, label in ((0.25, "1/4n"), (0.5, "1/2n (paper)"),
                          (1.0, "1/n"), (2.0, "2/n")):
        rounds: List[float] = []
        terminated = 0
        for seed in range(trials):
            schedule = DifficultySchedule(
                committee_probability=min(1.0, lam / n),
                leader_probability=min(1.0, factor / n))
            eligibility = FMineEligibility(
                n, schedule, seed=(f"e12a-{factor}", seed))
            instance = build_subquadratic_ba(
                n=n, f=f, inputs=_mixed_inputs(n), seed=seed,
                params=SecurityParameters(lam=lam, epsilon=0.1),
                eligibility=eligibility, max_iterations=30)
            # Equivocating corruption: higher leader probability also
            # means more *corrupt* proposers blocking commits — the
            # tension the 1/2n choice balances.
            adversary = StaticEquivocationAdversary(instance)
            result = run_instance(instance, f, adversary, seed=seed)
            rounds.append(float(result.rounds_executed))
            terminated += result.all_decided()
        leader_table.add_row(label, round(mean(rounds), 1),
                             terminated / trials)
        data[f"leader_{label}"] = mean(rounds)

    # (b) Degenerate difficulty p = 1 recovers the quadratic warmup.
    recover_table = Table(
        "E12b — difficulty p=1 collapses the compiled protocol to the warmup",
        ["protocol", "n", "multicasts", "consistency"],
    )
    n_small, f_small = 30, 8
    schedule = DifficultySchedule.always()
    eligibility = FMineEligibility(n_small, schedule, seed="e12b")
    instance = build_subquadratic_ba(
        n=n_small, f=f_small, inputs=_mixed_inputs(n_small), seed=0,
        params=SecurityParameters(lam=2 * n_small, epsilon=0.1),
        eligibility=eligibility, max_iterations=20)
    result = run_instance(instance, f_small, seed=0)
    recover_table.add_row("compiled, p=1", n_small,
                          result.metrics.multicast_complexity_messages,
                          result.consistent())
    quad_stats = run_trials(build_quadratic_ba, f=f_small, seeds=[0],
                            n=n_small, inputs=_mixed_inputs(n_small))
    recover_table.add_row("quadratic warmup", n_small,
                          round(quad_stats.mean_multicasts, 1),
                          quad_stats.consistency_rate == 1.0)
    data["p1_multicasts"] = result.metrics.multicast_complexity_messages
    data["p1_consistent"] = result.consistent()
    data["warmup_multicasts"] = quad_stats.mean_multicasts

    # (c) The λ/2 threshold's two-sided failure envelope.
    threshold_table = Table(
        "E12c — quorum threshold ablation (analytical, n=300 f=90 λ=40)",
        ["threshold", "P[corrupt quorum]", "P[honest shortfall]"],
    )
    from repro.analysis.chernoff import binomial_tail_ge, binomial_tail_le
    n_c, f_c, lam_c = 300, 90, 40
    for fraction, label in ((0.35, "0.35λ"), (0.5, "0.50λ (paper)"),
                            (0.65, "0.65λ")):
        threshold = math.ceil(fraction * lam_c)
        corrupt_quorum = binomial_tail_ge(threshold, f_c, lam_c / n_c)
        honest_short = binomial_tail_le(threshold - 1, n_c - f_c,
                                        lam_c / n_c)
        threshold_table.add_row(label, corrupt_quorum, honest_short)
        data[f"threshold_{label}"] = (corrupt_quorum, honest_short)

    return ExperimentResult(
        name="E12",
        tables=[leader_table, recover_table, threshold_table],
        data=data)


ALL_EXPERIMENTS = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E8": experiment_e8,
    "E9": experiment_e9,
    "E10": experiment_e10,
    "E11": experiment_e11,
    "E12": experiment_e12,
}
