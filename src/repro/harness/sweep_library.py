"""Named, ready-to-run sweeps for ``python -m repro sweep``.

Each entry is a :class:`~repro.harness.scenarios.SweepSpec` the paper
motivates directly:

- ``comm-vs-n`` — the headline scaling claim (Theorem 2): honest
  communication versus ``n`` for the subquadratic protocol against the
  quadratic BA and the static-committee baseline.  The subquadratic
  rows stay flat in multicasts as ``n`` quadruples; the quadratic rows
  grow linearly in multicasts (quadratically in classical messages).
- ``adversary-grid`` — adaptive-versus-static robustness (Section 1's
  motivating distinction): the subquadratic BA under no faults, crashes,
  static equivocation, and the adaptive speaker-corrupting adversary,
  across two system sizes.  Cells share ``(n, λ, seed)``, so the shared
  eligibility-lottery cache serves most coins from memory after the
  first adversary's run.
- ``resilience-frontier`` — corruption fractions approaching the
  ``(1/2 - ε) n`` bound (Theorem 17) at two committee sizes λ, showing
  the concrete-parameter failure envelope the Chernoff lemmas predict.
- ``latency-stress`` — the partial-synchrony axis (``docs/NETWORK.md``):
  subquadratic and quadratic BA swept across network conditions from
  lock-step to WAN jitter, plus the Δ-deadline delay scheduler, showing
  how effective round latency and messages-in-flight grow while the
  security rates stay flat (the synchronizer argument, executable).
- ``partition-heal`` — scheduled split-brain windows that heal, with and
  without a lossy asynchronous prelude: deferred cross-partition traffic
  floods in at the heal and the protocols still decide.  Also runs the
  Theorem-4 and Dolev–Reischuk attack harnesses under the same split —
  partition *studies* of the lower-bound attacks.
- ``early-stop-vs-delta`` — the GST-aware early-stopping variants
  (``docs/PROTOCOLS.md``) under a fixed GST and growing Δ: larger Δ puts
  GST at an earlier *protocol* round, so the trusted unanimity detector
  fires sooner and ``rounds_saved`` grows monotonically with the
  Δ-headroom.
- ``leader-vs-delta`` — the view-based leader family (``leader-ba``,
  ``docs/PROTOCOLS.md``) under a fixed GST and growing Δ, under the
  leader-killer and view-split adversaries, and as the multi-height
  chain workload: fewer views burn before GST as Δ grows, and the
  adversaries cost views, never agreement.
- ``leader-vs-quadratic`` — words per decision versus ``n``: the leader
  family's happy path against quadratic BA, with the Dolev–Reischuk
  counting attack run at the same sizes as the Ω(f²) floor line.
- ``words-vs-actual-f`` — the adaptive family (``adaptive-ba``,
  ``docs/PROTOCOLS.md``) dialing the *actual* fault count f* through
  the ``actual-faults`` adversary at fixed ``(n, f)``: total words grow
  O((f* + 1) · n) — linear at f* = 0, one amplification epoch per
  observed fault — while quadratic BA pays Θ(n²) at every f* and the
  Dolev–Reischuk Ω(f²) census marks the worst-case floor.
- ``topology-grid`` — one protocol point swept across the per-link
  latency topologies (uniform / clustered / star / ring): security rates
  stay flat while effective delivery latency tracks the topology's
  slow-link structure.
- ``smoke`` — a seconds-scale miniature of ``adversary-grid`` used by CI
  and the test suite.

Run one with::

    PYTHONPATH=src python -m repro sweep comm-vs-n --workers 4

Add ``--store DIR`` (or ``--resume``) to record cells into a persistent
experiment store — re-runs replay recorded cells byte-identically and
only compute new ones, and ``python -m repro report`` renders every
recorded sweep as one results book (``docs/RESULTS.md``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.harness.scenarios import (
    ScenarioSpec,
    SweepSpec,
    f_half_minus_one,
    f_third_minus_one,
)
from repro.sim.conditions import NETWORKS, TOPOLOGIES, NetworkConditions


COMM_VS_N = SweepSpec(
    name="comm-vs-n",
    description="Honest communication vs n: subquadratic stays flat, "
                "quadratic grows, static-committee is cheap but "
                "adaptively insecure (Theorem 2 / Section 1).",
    scenarios=(
        ScenarioSpec(
            name="subquadratic",
            protocol="subquadratic",
            grid={"n": (64, 128, 256, 512)},
            fixed={"f_fraction": 0.3, "lam": 24, "epsilon": 0.15},
            inputs="ones",
            adversary="crash",
            seeds=range(3),
        ),
        ScenarioSpec(
            name="quadratic",
            protocol="quadratic",
            grid={"n": (16, 32, 64, 96)},
            fixed={"f": f_half_minus_one},
            inputs="ones",
            adversary="crash",
            seeds=range(3),
        ),
        ScenarioSpec(
            name="static-committee",
            protocol="static-committee",
            grid={"n": (64, 128, 256, 512)},
            fixed={"f_fraction": 0.25},
            inputs="ones",
            seeds=range(3),
        ),
    ),
)

ADVERSARY_GRID = SweepSpec(
    name="adversary-grid",
    description="Subquadratic BA under static vs adaptive adversaries "
                "(crash, equivocation, speaker-corruption) across sizes; "
                "cells share one eligibility lottery per (n, λ, seed).",
    scenarios=(
        ScenarioSpec(
            name="subquadratic",
            protocol="subquadratic",
            grid={
                "adversary": ("none", "crash", "equivocate", "speaker"),
                "n": (100, 200),
            },
            fixed={"f_fraction": 0.25, "lam": 30, "epsilon": 0.1},
            inputs="mixed",
            seeds=range(3),
        ),
    ),
)

RESILIENCE_FRONTIER = SweepSpec(
    name="resilience-frontier",
    description="Security rates as f/n approaches 1/2 under static "
                "equivocation, at two committee sizes (Theorem 17).",
    scenarios=(
        ScenarioSpec(
            name="subquadratic",
            protocol="subquadratic",
            grid={
                "lam": (24, 40),
                "f_fraction": (0.1, 0.25, 0.4, 0.45),
            },
            fixed={"n": 160, "epsilon": 0.05},
            inputs="ones",
            adversary="equivocate",
            seeds=range(4),
        ),
    ),
)

LATENCY_STRESS = SweepSpec(
    name="latency-stress",
    description="Protocols under partial synchrony: perfect vs LAN vs WAN "
                "latency, plus the Δ-deadline delay scheduler "
                "(docs/NETWORK.md).",
    scenarios=(
        ScenarioSpec(
            name="subquadratic",
            protocol="subquadratic",
            grid={"network": ("perfect", "lan", "wan")},
            fixed={"n": 48, "f_fraction": 0.25, "lam": 16, "epsilon": 0.1},
            inputs="mixed",
            seeds=range(3),
        ),
        ScenarioSpec(
            name="quadratic",
            protocol="quadratic",
            grid={"network": ("perfect", "lan", "wan")},
            fixed={"n": 24, "f": f_half_minus_one},
            inputs="ones",
            adversary="crash",
            seeds=range(3),
        ),
        ScenarioSpec(
            name="delay-scheduler",
            protocol="quadratic",
            grid={"network": ("lan", "wan")},
            fixed={"n": 24, "f": 5},
            inputs="mixed",
            adversary="delay",
            seeds=range(3),
        ),
    ),
)

PARTITION_HEAL = SweepSpec(
    name="partition-heal",
    description="Scheduled split-brain that heals (and a lossy prelude): "
                "deferred traffic floods in at the heal, decisions still "
                "land; plus partition studies of the Theorem-4 and "
                "Dolev-Reischuk attacks (docs/NETWORK.md).",
    scenarios=(
        ScenarioSpec(
            name="quadratic",
            protocol="quadratic",
            grid={"network": ("perfect", "split-heal", "lossy")},
            fixed={"n": 24, "f": 5},
            inputs="mixed",
            seeds=range(3),
        ),
        ScenarioSpec(
            name="phase-king",
            protocol="phase-king",
            grid={"network": ("perfect", "split-heal")},
            fixed={"n": 21, "f": 4},
            inputs="mixed",
            seeds=range(3),
        ),
        # Partition studies on the lower-bound attack harnesses: does
        # strongly adaptive isolation still starve its victim when the
        # network itself splits and heals mid-attack?
        # total_rounds=8 protocol rounds × Δ=2 comfortably clears the
        # split-heal partition's heal at network round 10, so the study
        # observes the post-heal flood rather than an unhealed cutoff.
        ScenarioSpec(
            name="theorem4-under-partition",
            protocol="naive-broadcast",
            executor="theorem4",
            grid={"network": ("perfect", "split-heal")},
            fixed={"n": 24, "f": 8, "sender_input": 0, "total_rounds": 8},
            seeds=range(2),
        ),
        ScenarioSpec(
            name="dolev-reischuk-under-partition",
            protocol="naive-broadcast",
            executor="dolev-reischuk",
            grid={"network": ("perfect", "split-heal")},
            fixed={"n": 24, "f": 8, "sender_input": 0, "total_rounds": 8},
            seeds=(0,),
        ),
    ),
)

#: Fixed GST at network round 12 with a lossy prelude; the Δ axis grows
#: the dilation, so stabilization lands at protocol round ``ceil(12/Δ)``
#: — the early-stop detectors' trusted round — earlier and earlier.
#: Phase-king keeps a mild 10% prelude (its 2n/3 tallies are fragile to
#: heavy loss); quadratic BA needs 30% to keep its f+1 quorums from
#: deciding before GST at all.
def _early_stop_conditions(drop_rate):
    return tuple(
        NetworkConditions(delta=delta, gst=12,
                          latency=("uniform", 1, delta),
                          drop_rate=drop_rate)
        for delta in (2, 3, 4, 6))

EARLY_STOP_VS_DELTA = SweepSpec(
    name="early-stop-vs-delta",
    description="GST-aware early stopping vs Δ-headroom: fixed GST, "
                "growing Δ — the trusted unanimity round arrives at an "
                "earlier protocol round, so rounds_saved grows "
                "monotonically (docs/PROTOCOLS.md).",
    scenarios=(
        ScenarioSpec(
            name="phase-king-early-stop",
            protocol="phase-king-early-stop",
            grid={"network": _early_stop_conditions(0.1)},
            fixed={"n": 21, "f": 4},
            inputs="ones",
            seeds=range(3),
        ),
        ScenarioSpec(
            name="quadratic-early-stop",
            protocol="quadratic-early-stop",
            grid={"network": _early_stop_conditions(0.3)},
            fixed={"n": 15, "f": 7},
            inputs="mixed",
            seeds=range(3),
        ),
    ),
)

TOPOLOGY_GRID = SweepSpec(
    name="topology-grid",
    description="Per-link latency topologies (uniform/clustered/star/"
                "ring) under WAN conditions: security rates stay flat "
                "while delivery latency tracks the slow links "
                "(docs/NETWORK.md).",
    scenarios=(
        ScenarioSpec(
            name="quadratic",
            protocol="quadratic",
            grid={"topology": ("uniform", "clustered", "star", "ring")},
            fixed={"n": 24, "f": 5, "network": "wan"},
            inputs="mixed",
            seeds=range(3),
        ),
        ScenarioSpec(
            name="subquadratic",
            protocol="subquadratic",
            grid={"topology": ("uniform", "clustered")},
            fixed={"n": 48, "f_fraction": 0.25, "lam": 16, "epsilon": 0.1,
                   "network": "wan"},
            inputs="mixed",
            seeds=range(3),
        ),
    ),
)

LEADER_VS_DELTA = SweepSpec(
    name="leader-vs-delta",
    description="The view-based leader family under partial synchrony: "
                "fixed GST, growing Δ — GST lands at an earlier protocol "
                "round, so fewer views burn before an honest leader "
                "decides; plus the leader-killer and view-split "
                "adversaries and the multi-height chain workload "
                "(docs/PROTOCOLS.md).",
    scenarios=(
        ScenarioSpec(
            name="leader-ba",
            protocol="leader-ba",
            grid={"network": _early_stop_conditions(0.1)},
            fixed={"n": 13, "f": 4},
            inputs="mixed",
            seeds=range(3),
        ),
        ScenarioSpec(
            name="leader-ba-adversarial",
            protocol="leader-ba",
            grid={"adversary": ("leader-killer", "view-split")},
            fixed={"n": 13, "f": 4,
                   "network": _early_stop_conditions(0.1)[1]},
            inputs="mixed",
            seeds=range(3),
        ),
        # The heavy-traffic axis: three chained heights through one view
        # schedule, locks carried across height boundaries.
        ScenarioSpec(
            name="leader-chain",
            protocol="leader-chain",
            grid={"network": (_early_stop_conditions(0.1)[0],
                              _early_stop_conditions(0.1)[2])},
            fixed={"n": 13, "f": 4, "heights": 3},
            inputs="mixed",
            seeds=range(2),
        ),
    ),
)

LEADER_VS_QUADRATIC = SweepSpec(
    name="leader-vs-quadratic",
    description="Words per decision vs n: the leader family's linear "
                "happy path against quadratic BA's all-to-all rounds, "
                "with the Dolev-Reischuk Ω(f²) message bound as the "
                "floor both must respect (Momose-Ren frames the "
                "comparison; docs/PROTOCOLS.md).",
    scenarios=(
        ScenarioSpec(
            name="leader-ba",
            protocol="leader-ba",
            grid={"n": (16, 28, 40, 52)},
            fixed={"f": f_third_minus_one},
            inputs="mixed",
            seeds=range(3),
        ),
        ScenarioSpec(
            name="quadratic",
            protocol="quadratic",
            grid={"n": (16, 28, 40, 52)},
            fixed={"f": f_half_minus_one},
            inputs="mixed",
            seeds=range(3),
        ),
        # The lower-bound line: the Dolev-Reischuk counting attack at
        # the same sizes, whose reported message census is the Ω(f²)
        # floor the words-vs-n comparison is plotted against.
        ScenarioSpec(
            name="dolev-reischuk-bound",
            protocol="naive-broadcast",
            executor="dolev-reischuk",
            grid={"n": (16, 28, 40, 52)},
            fixed={"f": f_third_minus_one, "sender_input": 0,
                   "total_rounds": 8},
            seeds=(0,),
        ),
    ),
)

WORDS_VS_ACTUAL_F = SweepSpec(
    name="words-vs-actual-f",
    description="Adaptive BA's total words vs the actual fault count "
                "f*: the silent-when-honest fast path costs <= 4n words "
                "at f* = 0 and each observed fault buys at most one "
                "linear-cost amplification epoch (O((f*+1)n) words), "
                "against quadratic BA and the leader family at the same "
                "(n, f) and the Dolev-Reischuk Ω(f²) floor "
                "(Cohen-Keidar-Spiegelman; docs/PROTOCOLS.md).",
    scenarios=(
        ScenarioSpec(
            name="adaptive-ba",
            protocol="adaptive-ba",
            adversary="actual-faults",
            # f* as a grid axis: corrupt exactly k of the budgeted f=8
            # nodes (the upcoming collectors — worst-case placement).
            grid={"adversary_actual": (0, 2, 4, 6, 8)},
            fixed={"n": 25, "f": 8},
            inputs="ones",
            seeds=range(3),
        ),
        # The worst-case baselines at the same sizes and fault dials:
        # quadratic BA's words do not adapt to f*.
        ScenarioSpec(
            name="quadratic",
            protocol="quadratic",
            adversary="actual-faults",
            grid={"adversary_actual": (0, 2, 4, 6, 8)},
            fixed={"n": 25, "f": 8},
            inputs="ones",
            seeds=range(3),
        ),
        ScenarioSpec(
            name="leader-ba",
            protocol="leader-ba",
            adversary="actual-faults",
            grid={"adversary_actual": (0, 2, 4, 6, 8)},
            fixed={"n": 25, "f": 8},
            inputs="ones",
            seeds=range(3),
        ),
        # The lower-bound line: the Dolev-Reischuk counting attack at
        # the same (n, f), whose reported message census is the Ω(f²)
        # floor the adaptive curve dips under at small f*.
        ScenarioSpec(
            name="dolev-reischuk-bound",
            protocol="naive-broadcast",
            executor="dolev-reischuk",
            grid={},
            fixed={"n": 25, "f": 8, "sender_input": 0,
                   "total_rounds": 8},
            seeds=(0,),
        ),
    ),
)

SMOKE = SweepSpec(
    name="smoke",
    description="Seconds-scale adversary grid for CI and tests.",
    scenarios=(
        ScenarioSpec(
            name="subquadratic",
            protocol="subquadratic",
            grid={"adversary": ("none", "crash")},
            fixed={"n": 32, "f_fraction": 0.25, "lam": 12},
            inputs="mixed",
            seeds=range(2),
        ),
    ),
)

SWEEPS: Dict[str, SweepSpec] = {
    sweep.name: sweep
    for sweep in (COMM_VS_N, ADVERSARY_GRID, RESILIENCE_FRONTIER,
                  LATENCY_STRESS, PARTITION_HEAL, EARLY_STOP_VS_DELTA,
                  LEADER_VS_DELTA, LEADER_VS_QUADRATIC,
                  WORDS_VS_ACTUAL_F, TOPOLOGY_GRID, SMOKE)
}

#: Canonical presentation order (registration order above): the results
#: book (``harness/report.py``) sections known sweeps this way, so the
#: book reads headline-first regardless of store directory listing
#: order; sweeps not in the library sort alphabetically after.
SWEEP_ORDER = tuple(SWEEPS)


def resolve_sweep(name: str, network: Optional[str] = None,
                  topology: Optional[str] = None) -> SweepSpec:
    """Look up a library sweep and force optional network/topology
    bindings onto every scenario.

    The shared override semantics of ``python -m repro sweep
    --network/--topology`` and the service's submit API: a forced
    binding lands in every scenario's ``fixed`` mapping, and any grid
    axis of the same name is dropped — fixed bindings lose to same-name
    axes, so keeping the axis would silently swallow the override.
    Raises :class:`~repro.errors.ConfigurationError` for an unknown
    sweep or binding value, so callers surface one error type.
    """
    if name not in SWEEPS:
        raise ConfigurationError(
            f"unknown sweep {name!r} (have: {', '.join(sorted(SWEEPS))})")
    sweep = SWEEPS[name]
    forced: Dict[str, str] = {}
    if network is not None:
        if network not in NETWORKS:
            raise ConfigurationError(
                f"unknown network conditions {network!r} "
                f"(have {sorted(NETWORKS)})")
        forced["network"] = network
    if topology is not None:
        if topology not in TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology {topology!r} "
                f"(have {sorted(TOPOLOGIES)})")
        forced["topology"] = topology
    if not forced:
        return sweep
    return dataclasses.replace(sweep, scenarios=tuple(
        dataclasses.replace(
            scenario,
            grid={axis: values for axis, values in scenario.grid.items()
                  if axis not in forced},
            fixed={**scenario.fixed, **forced})
        for scenario in sweep.scenarios))
