"""Plain-text table rendering for experiment output.

The benchmarks print each experiment as a small aligned table (the
paper-shape rows recorded in EXPERIMENTS.md); no external dependencies.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def union_columns(rows: Sequence[dict]) -> List[str]:
    """The union of row keys in first-seen order — the one column-order
    rule for every artifact surface (tables, CSV, the results book)."""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def rows_to_table(title: str, rows: Sequence[dict]) -> "Table":
    """Build a :class:`Table` from flat row dicts.

    Columns come from :func:`union_columns`; missing values render as
    ``-``.  Both ``SweepResult.to_table`` and the results-book
    generator (``harness/report.py``) build their tables here, so a
    book rendered from stored rows matches the live sweep table
    exactly.
    """
    columns = union_columns(rows)
    table = Table(title, columns)
    for row in rows:
        table.add_row(*(row.get(column, "-") for column in columns))
    return table


class Table:
    """An aligned fixed-column table with a title."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(values)}")
        self.rows.append([_format_cell(value) for value in values])

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        header = "  ".join(column.ljust(widths[index])
                           for index, column in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[index])
                                   for index, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
